(** A continuous-query engine over the two-relation schema R(A,B),
    S(B,C), tying the whole stack together: hotspot-tracked SSI
    processing for both band joins and equality joins with local
    selections, per-query result callbacks, and full symmetry — both
    R-side and S-side insertions generate results.

    S-side events are processed by the paper's "symmetric" argument
    through mirrored state: the engine keeps R encoded as a second
    S-shaped table (B as the join key, A in the C slot) together with
    mirrored queries (band windows negated, rangeA/rangeC swapped), so
    a new S-tuple is processed by the very same SSI machinery with the
    roles of the relations exchanged. *)

type t

type subscription
(** Handle for cancelling a registered continuous query. *)

val create : ?alpha:float -> ?seed:int -> unit -> t
(** [alpha] is the hotspot threshold passed to the trackers (default
    0.01). *)

(** {2 Continuous queries} *)

val subscribe_band :
  t ->
  ?on_retract:(Cq_relation.Tuple.r -> Cq_relation.Tuple.s -> unit) ->
  range:Cq_interval.Interval.t ->
  (Cq_relation.Tuple.r -> Cq_relation.Tuple.s -> unit) ->
  subscription
(** Register [R ⋈_{S.B−R.B ∈ range} S]; the callback fires once per
    new result pair, for events on either side.  [on_retract] fires
    once per result pair that {e disappears} when a tuple is deleted
    (the paper's "changes between Q(D_i) and Q(D_{i-1})" include
    removals). *)

val subscribe_select :
  t ->
  ?on_retract:(Cq_relation.Tuple.r -> Cq_relation.Tuple.s -> unit) ->
  range_a:Cq_interval.Interval.t ->
  range_c:Cq_interval.Interval.t ->
  (Cq_relation.Tuple.r -> Cq_relation.Tuple.s -> unit) ->
  subscription
(** Register [σ_{A∈range_a} R ⋈_{B} σ_{C∈range_c} S]. *)

(** Subscriber callbacks are isolated: an exception raised by one
    callback is logged (source ["cq.engine"]) and does not disturb
    event processing or other subscribers. *)

val unsubscribe : t -> subscription -> bool

val band_query_count : t -> int
val select_query_count : t -> int

(** {2 Data events} *)

val insert_r : t -> a:float -> b:float -> Cq_relation.Tuple.r * int
(** Append an R-tuple: runs all affected continuous queries, invokes
    their callbacks, stores the tuple for future S-side events.
    Returns the tuple and the number of results delivered. *)

val insert_s : t -> b:float -> c:float -> Cq_relation.Tuple.s * int
(** Symmetric S-side insertion. *)

val delete_r : t -> Cq_relation.Tuple.r -> int option
(** Delete a previously inserted R tuple: every result pair it
    contributed is retracted through the [on_retract] callbacks.
    Returns the number of retractions, or [None] if the tuple was not
    present. *)

val delete_s : t -> Cq_relation.Tuple.s -> int option

val load_s : t -> (float * float) array -> unit
(** Bulk-load initial S contents (no results are generated, matching
    the continuous-query semantics of registering against a database
    state). *)

val load_r : t -> (float * float) array -> unit

(** {2 Introspection} *)

type stats = {
  r_size : int;
  s_size : int;
  events_processed : int;
  results_delivered : int;
  band_hotspots : int;
  band_coverage : float;
  select_hotspots : int;
  select_coverage : float;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
