lib/engine/engine.mli: Cq_interval Cq_relation Format
