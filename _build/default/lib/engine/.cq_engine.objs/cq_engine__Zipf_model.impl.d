lib/engine/zipf_model.ml: Array Cq_util List
