lib/engine/engine.ml: Array Cq_interval Cq_joins Cq_relation Format Hashtbl Logs Printexc
