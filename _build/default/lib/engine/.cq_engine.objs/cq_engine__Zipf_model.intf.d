lib/engine/zipf_model.mli:
