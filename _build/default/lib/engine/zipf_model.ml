let weights ~n_groups ~beta = Cq_util.Dist.zipf_weights ~n:n_groups ~beta

let coverage ~n_groups ~beta ~top_k =
  if n_groups <= 0 then invalid_arg "Zipf_model.coverage: n_groups must be positive";
  if top_k < 0 then invalid_arg "Zipf_model.coverage: top_k must be non-negative";
  let w = weights ~n_groups ~beta in
  let k = min top_k n_groups in
  let acc = ref 0.0 in
  for i = 0 to k - 1 do
    acc := !acc +. w.(i)
  done;
  !acc

let series ~n_groups ~beta ~ks = List.map (fun k -> (k, coverage ~n_groups ~beta ~top_k:k)) ks

let groups_needed ~n_groups ~beta ~target =
  let w = weights ~n_groups ~beta in
  let acc = ref 0.0 and k = ref 0 in
  while !acc < target && !k < n_groups do
    acc := !acc +. w.(!k);
    incr k
  done;
  !k
