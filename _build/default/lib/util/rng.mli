(** Deterministic pseudo-random number generation.

    All experiments in this repository are seeded so that every run is
    reproducible bit-for-bit.  The generator is splitmix64, which has a
    64-bit state, passes BigCrush, and is trivially splittable — good
    enough for workload synthesis (we make no cryptographic claims). *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator seeded with [seed]. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** [float t] draws uniformly from [\[0, 1)]. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [\[0, bound)].  [bound] must be
    positive. *)

val bool : t -> bool
(** Fair coin. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s continuation. *)
