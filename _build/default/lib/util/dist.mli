(** Samplers for the distributions used by the paper's workload
    (Table 1): uniform, normal (for range midpoints/lengths and the join
    attribute S.B) and Zipf (for the hotspot-coverage model of Figure 2). *)

val uniform : Rng.t -> lo:float -> hi:float -> float
(** Uniform draw from [\[lo, hi)]. *)

val normal : Rng.t -> mu:float -> sigma:float -> float
(** Gaussian draw via Box–Muller (the spare variate is deliberately not
    cached, keeping the sampler stateless w.r.t. the caller). *)

val normal_clamped : Rng.t -> mu:float -> sigma:float -> lo:float -> hi:float -> float
(** Gaussian draw clamped into [\[lo, hi\]] — the paper's "discretized
    normal ... with domain \[0,10000\]" for S.B. *)

val zipf_weights : n:int -> beta:float -> float array
(** [zipf_weights ~n ~beta] is the normalised Zipf pmf over ranks
    [1..n]: weight of rank k proportional to k^-beta. *)

val zipf : Rng.t -> cdf:float array -> int
(** Draw a rank in [\[0, n)] given the cumulative distribution built
    from {!zipf_weights} (see {!cdf_of_weights}). *)

val cdf_of_weights : float array -> float array
(** Prefix sums of a pmf, last entry forced to [1.0]. *)

val exponential : Rng.t -> rate:float -> float
(** Exponential draw (used for arrival-gap simulation in examples). *)
