(** Wall-clock timing for the benchmark harness. *)

val now : unit -> float
(** Seconds since the epoch, wall clock. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with the elapsed wall
    time in seconds. *)

val throughput : events:int -> seconds:float -> float
(** Events per second; 0 when [seconds] is not positive. *)
