let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

let throughput ~events ~seconds =
  if seconds <= 0.0 then 0.0 else float_of_int events /. seconds
