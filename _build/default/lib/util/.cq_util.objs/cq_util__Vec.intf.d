lib/util/vec.mli:
