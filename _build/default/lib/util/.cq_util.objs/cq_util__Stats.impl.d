lib/util/stats.ml: Array
