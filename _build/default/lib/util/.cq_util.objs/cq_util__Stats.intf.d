lib/util/stats.mli:
