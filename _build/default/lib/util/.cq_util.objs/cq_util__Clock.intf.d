lib/util/clock.mli:
