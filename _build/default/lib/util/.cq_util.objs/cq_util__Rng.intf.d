lib/util/rng.mli:
