lib/util/rng.ml: Int64
