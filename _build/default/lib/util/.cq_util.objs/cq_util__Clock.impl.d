lib/util/clock.ml: Unix
