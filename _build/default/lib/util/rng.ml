type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 finaliser: two xor-shift-multiply rounds. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let float t =
  (* 53 high-quality mantissa bits -> [0,1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit native int without
     wrapping negative; modulo bias is negligible for bounds far below
     2^62. *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let bool t = Int64.logand (int64 t) 1L = 1L

let split t =
  let s = int64 t in
  { state = mix s }
