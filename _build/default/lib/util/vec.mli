(** Growable arrays (OCaml 5.1 predates [Dynarray]).

    Amortised O(1) push, O(1) random access, O(1) swap-remove.  Used
    pervasively for result sinks and per-group member lists. *)

type 'a t

val create : unit -> 'a t
val make : int -> 'a t
(** [make capacity] pre-sizes the backing store. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a
(** Remove and return the last element.  @raise Invalid_argument if empty. *)

val swap_remove : 'a t -> int -> 'a
(** O(1) removal that moves the last element into the hole; order is not
    preserved.  Returns the removed element. *)

val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t
val of_array : 'a array -> 'a t
val sort : ('a -> 'a -> int) -> 'a t -> unit
