type 'a t = {
  mutable data : 'a array;
  mutable len : int;
}

let create () = { data = [||]; len = 0 }

(* Capacity is a hint only; the backing store is allocated lazily on the
   first push, so no dummy element is ever needed. *)
let make _capacity = create ()

let length t = t.len
let is_empty t = t.len = 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set: index out of bounds";
  t.data.(i) <- x

let grow t x =
  let cap = Array.length t.data in
  let ncap = if cap = 0 then 8 else cap * 2 in
  let ndata = Array.make ncap x in
  Array.blit t.data 0 ndata 0 t.len;
  t.data <- ndata

let push t x =
  if t.len = Array.length t.data then grow t x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Vec.pop: empty";
  t.len <- t.len - 1;
  t.data.(t.len)

let swap_remove t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.swap_remove: index out of bounds";
  let x = t.data.(i) in
  t.len <- t.len - 1;
  t.data.(i) <- t.data.(t.len);
  x

let clear t = t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec loop i = i < t.len && (p t.data.(i) || loop (i + 1)) in
  loop 0

let to_array t = Array.sub t.data 0 t.len
let to_list t = Array.to_list (to_array t)

let of_list l =
  let t = create () in
  List.iter (push t) l;
  t

let of_array a =
  let t = create () in
  Array.iter (push t) a;
  t

let sort cmp t =
  let a = to_array t in
  Array.sort cmp a;
  Array.blit a 0 t.data 0 t.len
