let uniform rng ~lo ~hi = lo +. ((hi -. lo) *. Rng.float rng)

let normal rng ~mu ~sigma =
  (* Box–Muller.  u1 must be nonzero for the log. *)
  let rec nonzero () =
    let u = Rng.float rng in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = Rng.float rng in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let normal_clamped rng ~mu ~sigma ~lo ~hi =
  Float.max lo (Float.min hi (normal rng ~mu ~sigma))

let zipf_weights ~n ~beta =
  if n <= 0 then invalid_arg "Dist.zipf_weights: n must be positive";
  let w = Array.init n (fun i -> Float.pow (float_of_int (i + 1)) (-.beta)) in
  let total = Array.fold_left ( +. ) 0.0 w in
  Array.map (fun x -> x /. total) w

let cdf_of_weights w =
  let n = Array.length w in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. w.(i);
    cdf.(i) <- !acc
  done;
  if n > 0 then cdf.(n - 1) <- 1.0;
  cdf

let zipf rng ~cdf =
  let x = Rng.float rng in
  (* Binary search for the first index with cdf.(i) >= x. *)
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) >= x then hi := mid else lo := mid + 1
  done;
  !lo

let exponential rng ~rate =
  if rate <= 0.0 then invalid_arg "Dist.exponential: rate must be positive";
  let rec nonzero () =
    let u = Rng.float rng in
    if u > 0.0 then u else nonzero ()
  in
  -.log (nonzero ()) /. rate
