type result = {
  boundaries : int array;
  centers : float array;
  cost : float;
}

let validate ~pts ~weights ~k =
  let m = Array.length pts in
  if k <= 0 then invalid_arg "Kmeans1d: k must be positive";
  if Array.length weights <> m then invalid_arg "Kmeans1d: weights length mismatch";
  for i = 1 to m - 1 do
    if pts.(i - 1) > pts.(i) then invalid_arg "Kmeans1d: points must be sorted"
  done;
  Array.iter (fun w -> if w < 0.0 then invalid_arg "Kmeans1d: negative weight") weights

(* Prefix sums of w, w*x, w*x^2 make any contiguous cluster's optimal
   cost O(1): cost = sum(w x^2) - (sum(w x))^2 / sum(w). *)
type prefix = { w : float array; wx : float array; wxx : float array }

let prefixes ~pts ~weights =
  let m = Array.length pts in
  let w = Array.make (m + 1) 0.0 in
  let wx = Array.make (m + 1) 0.0 in
  let wxx = Array.make (m + 1) 0.0 in
  for i = 0 to m - 1 do
    w.(i + 1) <- w.(i) +. weights.(i);
    wx.(i + 1) <- wx.(i) +. (weights.(i) *. pts.(i));
    wxx.(i + 1) <- wxx.(i) +. (weights.(i) *. pts.(i) *. pts.(i))
  done;
  { w; wx; wxx }

let segment p ~i ~j =
  let sw = p.w.(j + 1) -. p.w.(i) in
  let swx = p.wx.(j + 1) -. p.wx.(i) in
  let swxx = p.wxx.(j + 1) -. p.wxx.(i) in
  if sw <= 0.0 then (0.0, 0.0)
  else
    let mean = swx /. sw in
    (* Guard against tiny negative round-off. *)
    (mean, Float.max 0.0 (swxx -. (swx *. swx /. sw)))

let cluster_cost ~pts ~weights ~i ~j =
  let p = prefixes ~pts ~weights in
  segment p ~i ~j

let finalize ~pts ~weights ~boundaries =
  let p = prefixes ~pts ~weights in
  let k = Array.length boundaries - 1 in
  let centers = Array.make k 0.0 in
  let cost = ref 0.0 in
  for c = 0 to k - 1 do
    let i = boundaries.(c) and j = boundaries.(c + 1) - 1 in
    if i <= j then begin
      let mean, cst = segment p ~i ~j in
      centers.(c) <- mean;
      cost := !cost +. cst
    end
  done;
  { boundaries; centers; cost = !cost }

let exact ~pts ~weights ~k =
  validate ~pts ~weights ~k;
  let m = Array.length pts in
  if m = 0 then { boundaries = Array.make (k + 1) 0; centers = Array.make k 0.0; cost = 0.0 }
  else begin
    let k = min k m in
    let p = prefixes ~pts ~weights in
    (* dp.(b).(j): best cost of clustering points 0..j-1 into b
       clusters; arg.(b).(j): start index of the last cluster. *)
    let dp = Array.make_matrix (k + 1) (m + 1) infinity in
    let arg = Array.make_matrix (k + 1) (m + 1) 0 in
    dp.(0).(0) <- 0.0;
    for b = 1 to k do
      for j = 1 to m do
        for i = b - 1 to j - 1 do
          if dp.(b - 1).(i) < infinity then begin
            let _, cst = segment p ~i ~j:(j - 1) in
            let total = dp.(b - 1).(i) +. cst in
            if total < dp.(b).(j) then begin
              dp.(b).(j) <- total;
              arg.(b).(j) <- i
            end
          end
        done
      done
    done;
    (* Backtrack. *)
    let boundaries = Array.make (k + 1) 0 in
    boundaries.(k) <- m;
    let j = ref m in
    for b = k downto 1 do
      let i = arg.(b).(!j) in
      boundaries.(b - 1) <- i;
      j := i
    done;
    finalize ~pts ~weights ~boundaries
  end

let lloyd ?(max_iter = 50) ~pts ~weights ~k () =
  validate ~pts ~weights ~k;
  let m = Array.length pts in
  if m = 0 then { boundaries = Array.make (k + 1) 0; centers = Array.make k 0.0; cost = 0.0 }
  else begin
    let k = min k m in
    let p = prefixes ~pts ~weights in
    (* Seed with evenly spread index boundaries. *)
    let boundaries = Array.init (k + 1) (fun c -> c * m / k) in
    let centers = Array.make k 0.0 in
    let recenter () =
      for c = 0 to k - 1 do
        let i = boundaries.(c) and j = boundaries.(c + 1) - 1 in
        if i <= j then centers.(c) <- fst (segment p ~i ~j)
      done
    in
    recenter ();
    let changed = ref true in
    let iter = ref 0 in
    while !changed && !iter < max_iter do
      incr iter;
      changed := false;
      (* Reassign: on sorted points, the boundary between cluster c and
         c+1 is where points flip to being closer to centers.(c+1). *)
      for c = 1 to k - 1 do
        let lo = boundaries.(c - 1) and hi = boundaries.(c + 1) in
        (* Find the first index in [lo, hi) closer to centers.(c) than
           to centers.(c-1). *)
        let target = (centers.(c - 1) +. centers.(c)) /. 2.0 in
        let a = ref lo and b = ref hi in
        while !a < !b do
          let mid = (!a + !b) / 2 in
          if pts.(mid) < target then a := mid + 1 else b := mid
        done;
        if boundaries.(c) <> !a then begin
          boundaries.(c) <- !a;
          changed := true
        end
      done;
      recenter ()
    done;
    finalize ~pts ~weights ~boundaries
  end
