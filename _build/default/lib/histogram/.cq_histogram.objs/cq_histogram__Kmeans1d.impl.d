lib/histogram/kmeans1d.ml: Array Float
