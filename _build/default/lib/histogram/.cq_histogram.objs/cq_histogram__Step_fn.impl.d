lib/histogram/step_fn.ml: Array Cq_interval Cq_util Float List
