lib/histogram/histogram.mli: Step_fn
