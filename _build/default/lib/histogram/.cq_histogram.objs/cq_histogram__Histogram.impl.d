lib/histogram/histogram.ml: Array Cq_util Float List Step_fn
