lib/histogram/step_fn.mli: Cq_interval
