lib/histogram/kmeans1d.mli:
