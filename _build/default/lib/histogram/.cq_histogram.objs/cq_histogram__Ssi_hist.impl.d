lib/histogram/ssi_hist.ml: Array Cq_interval Float Fun Hotspot_core Int Kmeans1d List Step_fn
