lib/histogram/ssi_hist.mli: Cq_interval Step_fn
