(** Bucket histograms for interval stabbing counts, and the two
    baselines of Section 3.3's evaluation (Figure 12): the standard
    equal-width histogram and the V-optimal histogram computed by
    dynamic programming.

    The error model follows the paper: with query points distributed
    by a density φ (uniform over the domain here), the quality of a
    histogram h against the true stabbing function fI is the
    mean-squared {e relative} error
    E²(h, fI) = ∫ |h(x) − fI(x)|² / max(fI(x), 1)² φ(x) dx
    (the max(·,1) guards the measure-zero regions where fI = 0). *)

type t = {
  bounds : float array;  (** k+1 bucket boundaries, strictly increasing. *)
  values : float array;  (** k bucket heights. *)
}

val eval : t -> float -> float
(** 0 outside [bounds.(0), bounds.(k)). *)

val num_buckets : t -> int

val of_step_fn : Step_fn.t -> t
(** One bucket per piece (exact representation, many buckets). *)

val to_step_fn : t -> Step_fn.t

val mean_squared_rel_error : t -> Step_fn.t -> lo:float -> hi:float -> float
(** E²(h, fI) with φ uniform on [lo, hi], integrated exactly piece by
    piece. *)

val avg_rel_error_on : t -> Step_fn.t -> probes:float array -> float
(** The evaluation of Figure 12: mean over the probes of
    |h(x) − fI(x)| / max(fI(x), 1). *)

val equal_width : Step_fn.t -> lo:float -> hi:float -> buckets:int -> t
(** EQW-HIST: fixed equal-width boundaries; each bucket holds the
    average of fI over the bucket (frequency average). *)

val equal_depth : Step_fn.t -> lo:float -> hi:float -> buckets:int -> t
(** Equi-depth baseline: boundaries chosen so each bucket holds an
    equal share of the total mass ∫fI; bucket heights are the local
    averages.  Adapts to where the mass is, but not to where the
    {e shape} changes — the gap SSI-HIST closes. *)

val optimal : Step_fn.t -> lo:float -> hi:float -> buckets:int -> t
(** OPTIMAL: the V-optimal histogram under the relative-error measure,
    by O(m²·buckets) dynamic programming over the breakpoints of fI
    restricted to [lo, hi] (Lemma 4 justifies restricting bucket
    boundaries to breakpoints).  Exact but slow — the paper reports
    6.5 hours on a 10k-interval sample; run it on samples only. *)
