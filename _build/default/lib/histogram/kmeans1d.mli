(** Weighted one-dimensional k-means, the clustering subroutine of the
    SSI histogram (Section 3.3, Lemma 5).

    Input points must be sorted (the histogram use case feeds the
    values of a monotone step function, which are sorted by
    construction); optimal clusters of sorted 1-D points are contiguous
    runs, so a clustering is returned as segment boundaries. *)

type result = {
  boundaries : int array;
      (** [k+1] indices into the point array: cluster j spans points
          [boundaries.(j) .. boundaries.(j+1) - 1]. *)
  centers : float array;  (** Weighted mean of each cluster. *)
  cost : float;  (** Total weighted squared distance to the centers. *)
}

val cluster_cost : pts:float array -> weights:float array -> i:int -> j:int -> float * float
(** [(weighted mean, cost)] of clustering points [i..j] (inclusive)
    into one cluster — O(1) after internal prefix sums are built by
    the callers below; exposed for tests. *)

val exact : pts:float array -> weights:float array -> k:int -> result
(** Optimal contiguous clustering by dynamic programming, O(m²k).
    @raise Invalid_argument on unsorted points, nonpositive k, or
    mismatched arrays. *)

val lloyd :
  ?max_iter:int -> pts:float array -> weights:float array -> k:int -> unit -> result
(** The iterative heuristic (default 50 iterations), seeded with
    evenly spread quantile boundaries.  Same validation as {!exact}. *)
