(** Right-continuous step functions over the reals, the common
    currency of Section 3.3: the stabbing-count function fI(x) of an
    interval set is a step function, histograms are step functions
    with few pieces, and the SSI histogram is a sum of per-group step
    functions. *)

type t
(** Piecewise-constant; 0 before the first breakpoint.  At a
    breakpoint x with value v, f(y) = v for all y in [x, next). *)

val zero : t

val of_breaks : (float * float) array -> t
(** [(x, value from x onward)] pairs; must be strictly increasing in x.
    @raise Invalid_argument otherwise. *)

val of_intervals : Cq_interval.Interval.t array -> t
(** The stabbing-count function fI: fI(x) = |{i : lo_i <= x <= hi_i}|.
    Exact everywhere, including at closed endpoints (the drop after an
    interval's right endpoint happens at [Float.succ hi]). *)

val eval : t -> float -> float
(** O(log pieces). *)

val breaks : t -> (float * float) array
(** The canonical breakpoint representation (strictly increasing x,
    consecutive values distinct). *)

val num_pieces : t -> int

val add : t -> t -> t
(** Pointwise sum (breakpoint merge). *)

val sum_all : t list -> t
(** Fold of {!add} over the list (balanced, so summing g step
    functions with p total pieces costs O(p log g)). *)

val clip : t -> lo:float -> hi:float -> t
(** Restrict to [lo, hi): 0 outside. *)

val equal_on : t -> t -> probes:float array -> bool
(** Test helper: pointwise equality on the probe set. *)
