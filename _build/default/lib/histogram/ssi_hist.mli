(** SSI-HIST: near-linear-time histogram construction for interval
    stabbing counts — Section 3.3.

    The construction computes the canonical stabbing partition of the
    interval set; within each group, the stabbing function is split at
    the group's stabbing point into a monotone increasing left part
    and a monotone decreasing right part, each approximated by a
    weighted one-dimensional k-means clustering of its breakpoint
    values (Lemma 5: the two problems are equivalent).  Monotonicity
    makes the values sorted, so {!Kmeans1d} applies directly.  The
    final histogram is the sum of the per-group step functions.

    Buckets are allocated to groups proportionally to group
    cardinality (the paper's heuristic), at least two per group (one
    per side). *)

type t

val build :
  ?use_exact_kmeans:bool ->
  Cq_interval.Interval.t array ->
  buckets:int ->
  t
(** [use_exact_kmeans] switches the per-side clustering from iterative
    Lloyd (the paper's choice, default) to the optimal DP — an
    accuracy ablation.  @raise Invalid_argument if [buckets <= 0]. *)

val estimate : t -> float -> float
(** h(x): the estimated number of intervals stabbed by x. *)

val to_step_fn : t -> Step_fn.t

val buckets_used : t -> int
(** Total pieces across the per-group histograms (the heuristic
    allocation may use slightly fewer than requested). *)

val num_groups : t -> int
(** τ(I): size of the canonical partition used. *)

val avg_rel_error_on : t -> Step_fn.t -> probes:float array -> float
(** Convenience: Figure 12's metric against a reference function. *)
