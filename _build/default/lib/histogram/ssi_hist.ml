module I = Cq_interval.Interval

type t = {
  fn : Step_fn.t;
  buckets_used : int;
  num_groups : int;
}

(* Relative-error weight of a segment [a, b) whose contribution is
   judged against the overall stabbing count there: len / max(f,1)^2.
   For a spatially isolated group this is exactly the paper's formula
   (1) (the group's own value IS the global value); where groups
   overlap, dividing by the global count keeps the k-means objective
   aligned with the error measure the histogram is evaluated under. *)
let seg_weight ~global a b =
  let d = Float.max (Step_fn.eval global a) 1.0 in
  (b -. a) /. (d *. d)

(* Approximate a monotone step function (segment boundaries [xs] of
   length m+1, values [ys] of length m) with at most [k] buckets via
   weighted k-means on the values; returns (x, value) breaks covering
   [xs.(0), xs.(m)). *)
let approx_monotone ~use_exact ~global ~xs ~ys ~k =
  let m = Array.length ys in
  if m = 0 then [||]
  else begin
    let increasing = m < 2 || ys.(0) <= ys.(m - 1) in
    (* Kmeans1d wants sorted points; feed the values in increasing
       order and map cluster runs back to x order. *)
    let ordered i = if increasing then i else m - 1 - i in
    let pts = Array.init m (fun i -> ys.(ordered i)) in
    let ws =
      Array.init m (fun i ->
          let oi = ordered i in
          seg_weight ~global xs.(oi) xs.(oi + 1))
    in
    let res =
      if use_exact then Kmeans1d.exact ~pts ~weights:ws ~k
      else Kmeans1d.lloyd ~pts ~weights:ws ~k ()
    in
    let nclusters = Array.length res.centers in
    (* Lloyd iterations may leave empty clusters; they hold no segments
       and must not emit (duplicate) breakpoints. *)
    let runs =
      List.init nclusters (fun c -> c)
      |> List.filter (fun c -> res.boundaries.(c) < res.boundaries.(c + 1))
      |> List.map (fun c ->
             let i = res.boundaries.(c) and j = res.boundaries.(c + 1) - 1 in
             let a = if increasing then i else ordered j in
             (a, res.centers.(c)))
      |> Array.of_list
    in
    Array.sort (fun (a, _) (b, _) -> Int.compare a b) runs;
    Array.map (fun (a, center) -> (xs.(a), center)) runs
  end

(* Segment representation of a piece list: boundaries xs (n+1) and
   per-segment values ys (n). *)
let segments_of_breaks pieces ~stop =
  let n = Array.length pieces in
  let xs = Array.make (n + 1) 0.0 in
  let ys = Array.make n 0.0 in
  Array.iteri
    (fun i (x, v) ->
      xs.(i) <- x;
      ys.(i) <- v)
    pieces;
  xs.(n) <- stop;
  (xs, ys)

let build ?(use_exact_kmeans = false) intervals ~buckets =
  if buckets <= 0 then invalid_arg "Ssi_hist.build: buckets must be positive";
  let partition = Hotspot_core.Stabbing.canonical Fun.id intervals in
  let global = Step_fn.of_intervals intervals in
  let n_total = Array.length intervals in
  let groups = Array.length partition in
  let fns = ref [] in
  let used = ref 0 in
  Array.iter
    (fun (g : I.t Hotspot_core.Stabbing.group) ->
      let f = Step_fn.of_intervals g.members in
      let pieces = Step_fn.breaks f in
      (* Cardinality-proportional allocation, at least 1 per group (a
         one-bucket group is approximated by its weighted mean). *)
      let share =
        if n_total = 0 then 1
        else
          max 1
            (int_of_float
               (Float.round
                  (float_of_int buckets *. float_of_int (Array.length g.members)
                  /. float_of_int n_total)))
      in
      (* Split at the stabbing point: pieces at x <= stab only gain
         intervals (every member's left endpoint is <= stab), so they
         form the monotone increasing half; later pieces only lose
         intervals and form the decreasing half. *)
      let left_pieces, right_pieces =
        let all = Array.to_list pieces in
        ( Array.of_list (List.filter (fun (x, _) -> x <= g.stab) all),
          Array.of_list (List.filter (fun (x, _) -> x > g.stab) all) )
      in
      let stop_left =
        if Array.length right_pieces > 0 then fst right_pieces.(0)
        else if Array.length left_pieces > 0 then
          Float.succ (fst left_pieces.(Array.length left_pieces - 1))
        else g.stab
      in
      let stop_right =
        if Array.length right_pieces > 0 then
          Float.succ (fst right_pieces.(Array.length right_pieces - 1))
        else g.stab
      in
      let approx_half pieces k ~stop =
        if Array.length pieces = 0 then [||]
        else begin
          let xs, ys = segments_of_breaks pieces ~stop in
          approx_monotone ~use_exact:use_exact_kmeans ~global ~xs ~ys ~k
        end
      in
      let lb, rb =
        if share = 1 then begin
          (* A single bucket: the weighted mean over every segment of
             both halves. *)
          let sw = ref 0.0 and swy = ref 0.0 in
          let accumulate pieces ~stop =
            let xs, ys = segments_of_breaks pieces ~stop in
            Array.iteri
              (fun i y ->
                let w = seg_weight ~global xs.(i) xs.(i + 1) in
                sw := !sw +. w;
                swy := !swy +. (w *. y))
              ys
          in
          if Array.length left_pieces > 0 then accumulate left_pieces ~stop:stop_left;
          if Array.length right_pieces > 0 then accumulate right_pieces ~stop:stop_right;
          let mean = if !sw > 0.0 then !swy /. !sw else 0.0 in
          let start =
            if Array.length left_pieces > 0 then fst left_pieces.(0)
            else fst right_pieces.(0)
          in
          ([| (start, mean) |], [||])
        end
        else begin
          let kl = max 1 (share / 2) in
          let kr = max 1 (share - kl) in
          ( approx_half left_pieces kl ~stop:stop_left,
            approx_half right_pieces kr ~stop:stop_right )
        end
      in
      (* Close the approximation back to zero just past the group's
         last true piece. *)
      let combined = Array.append lb rb in
      used := !used + Array.length combined;
      if Array.length combined > 0 then begin
        let last_x = fst combined.(Array.length combined - 1) in
        let terminator = Float.max (Float.succ last_x) stop_right in
        let closed = Array.append combined [| (terminator, 0.0) |] in
        fns := Step_fn.of_breaks closed :: !fns
      end)
    partition;
  { fn = Step_fn.sum_all !fns; buckets_used = !used; num_groups = groups }

let estimate t x = Step_fn.eval t.fn x
let to_step_fn t = t.fn
let buckets_used t = t.buckets_used
let num_groups t = t.num_groups

let avg_rel_error_on t f ~probes =
  let n = Array.length probes in
  if n = 0 then 0.0
  else begin
    let total = ref 0.0 in
    Array.iter
      (fun x ->
        let fv = Step_fn.eval f x in
        let hv = estimate t x in
        total := !total +. (Float.abs (hv -. fv) /. Float.max fv 1.0))
      probes;
    !total /. float_of_int n
  end
