type t = {
  bounds : float array;
  values : float array;
}

let num_buckets t = Array.length t.values

let eval t x =
  let k = num_buckets t in
  if k = 0 || x < t.bounds.(0) || x >= t.bounds.(k) then 0.0
  else begin
    (* Rightmost boundary <= x. *)
    let lo = ref 0 and hi = ref (k - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if t.bounds.(mid) <= x then lo := mid else hi := mid - 1
    done;
    t.values.(!lo)
  end

let of_step_fn f =
  let pieces = Step_fn.breaks f in
  let n = Array.length pieces in
  if n = 0 then { bounds = [| 0.0; 1.0 |]; values = [| 0.0 |] }
  else begin
    let bounds = Array.make (n + 1) 0.0 in
    let values = Array.make n 0.0 in
    Array.iteri
      (fun i (x, v) ->
        bounds.(i) <- x;
        values.(i) <- v)
      pieces;
    (* Last piece extends conceptually to +inf; close it just past the
       final break (its value is normally 0 in stabbing functions). *)
    bounds.(n) <- Float.succ (fst pieces.(n - 1));
    { bounds; values }
  end

let to_step_fn t =
  let k = num_buckets t in
  let pairs = Array.init (k + 1) (fun i ->
      if i < k then (t.bounds.(i), t.values.(i)) else (t.bounds.(k), 0.0))
  in
  Step_fn.of_breaks pairs

(* Visit the refinement of [lo, hi) induced by both the histogram
   boundaries and the step function breaks: [f seg_lo seg_hi h_val
   f_val] per constant piece. *)
let iter_refinement t f ~lo ~hi k =
  let cuts =
    Array.to_list t.bounds @ (Step_fn.breaks f |> Array.to_list |> List.map fst)
    |> List.filter (fun x -> x > lo && x < hi)
    |> List.sort_uniq Float.compare
  in
  let xs = (lo :: cuts) @ [ hi ] in
  let rec go = function
    | a :: (b :: _ as rest) ->
        k a b (eval t a) (Step_fn.eval f a);
        go rest
    | _ -> ()
  in
  go xs

let mean_squared_rel_error t f ~lo ~hi =
  if hi <= lo then invalid_arg "Histogram.mean_squared_rel_error: empty domain";
  let total = ref 0.0 in
  iter_refinement t f ~lo ~hi (fun a b hv fv ->
      let denom = Float.max fv 1.0 in
      let e = (hv -. fv) /. denom in
      total := !total +. (e *. e *. (b -. a)));
  !total /. (hi -. lo)

let avg_rel_error_on t f ~probes =
  let n = Array.length probes in
  if n = 0 then 0.0
  else begin
    let total = ref 0.0 in
    Array.iter
      (fun x ->
        let fv = Step_fn.eval f x in
        let hv = eval t x in
        total := !total +. (Float.abs (hv -. fv) /. Float.max fv 1.0))
      probes;
    !total /. float_of_int n
  end

let equal_width f ~lo ~hi ~buckets =
  if buckets <= 0 then invalid_arg "Histogram.equal_width: buckets must be positive";
  if hi <= lo then invalid_arg "Histogram.equal_width: empty domain";
  let width = (hi -. lo) /. float_of_int buckets in
  let bounds = Array.init (buckets + 1) (fun i -> lo +. (float_of_int i *. width)) in
  let sums = Array.make buckets 0.0 in
  (* Average of f over each bucket, integrated exactly. *)
  let skeleton = { bounds; values = Array.make buckets 0.0 } in
  iter_refinement skeleton f ~lo ~hi (fun a b _ fv ->
      let bucket = min (buckets - 1) (int_of_float ((a -. lo) /. width)) in
      sums.(bucket) <- sums.(bucket) +. (fv *. (b -. a)));
  { bounds; values = Array.map (fun s -> s /. width) sums }

let equal_depth f ~lo ~hi ~buckets =
  if buckets <= 0 then invalid_arg "Histogram.equal_depth: buckets must be positive";
  if hi <= lo then invalid_arg "Histogram.equal_depth: empty domain";
  (* Total mass and per-segment masses over [lo, hi). *)
  let inner =
    Step_fn.breaks f |> Array.to_list |> List.map fst |> List.filter (fun x -> x > lo && x < hi)
  in
  let xs = Array.of_list ((lo :: inner) @ [ hi ]) in
  let m = Array.length xs - 1 in
  let masses = Array.init m (fun i -> Step_fn.eval f xs.(i) *. (xs.(i + 1) -. xs.(i))) in
  let total = Array.fold_left ( +. ) 0.0 masses in
  if total <= 0.0 then
    (* Degenerate: fall back to one flat zero bucket. *)
    { bounds = [| lo; hi |]; values = [| 0.0 |] }
  else begin
    let per = total /. float_of_int buckets in
    let bounds = Cq_util.Vec.create () in
    Cq_util.Vec.push bounds lo;
    let acc = ref 0.0 and target = ref per in
    for i = 0 to m - 1 do
      let v = Step_fn.eval f xs.(i) in
      let seg_end = xs.(i + 1) in
      let x = ref xs.(i) in
      (* A heavy segment can close several buckets. *)
      while
        !target < total -. 1e-9
        && v > 0.0
        && !acc +. ((seg_end -. !x) *. v) >= !target -. 1e-12
      do
        let need = (!target -. !acc) /. v in
        x := !x +. need;
        acc := !target;
        if !x > lo && !x < hi then Cq_util.Vec.push bounds !x;
        target := !target +. per
      done;
      acc := !acc +. ((seg_end -. !x) *. v)
    done;
    Cq_util.Vec.push bounds hi;
    let bounds = Cq_util.Vec.to_array bounds in
    (* Deduplicate identical boundaries (possible with zero-width
       buckets on spikes). *)
    let bounds =
      Array.of_list
        (List.sort_uniq Float.compare (Array.to_list bounds))
    in
    let k = Array.length bounds - 1 in
    let values = Array.make k 0.0 in
    let skeleton = { bounds; values } in
    let sums = Array.make k 0.0 in
    iter_refinement skeleton f ~lo ~hi (fun a b _ fv ->
        (* Locate the bucket of [a, b). *)
        let idx = ref 0 in
        for j = 0 to k - 1 do
          if bounds.(j) <= a then idx := j
        done;
        sums.(!idx) <- sums.(!idx) +. (fv *. (b -. a)));
    {
      bounds;
      values = Array.init k (fun j -> sums.(j) /. Float.max 1e-300 (bounds.(j + 1) -. bounds.(j)));
    }
  end

let optimal f ~lo ~hi ~buckets =
  if buckets <= 0 then invalid_arg "Histogram.optimal: buckets must be positive";
  if hi <= lo then invalid_arg "Histogram.optimal: empty domain";
  (* Segments of fI within [lo, hi): x-boundaries and values. *)
  let inner =
    Step_fn.breaks f |> Array.to_list |> List.map fst
    |> List.filter (fun x -> x > lo && x < hi)
  in
  let xs = Array.of_list ((lo :: inner) @ [ hi ]) in
  let m = Array.length xs - 1 in
  let ys = Array.init m (fun i -> Step_fn.eval f xs.(i)) in
  (* Relative-error weights: w_l = len_l * phi / y_l^2 with phi
     uniform; the constant 1/(hi-lo) does not change the argmin. *)
  let ws =
    Array.init m (fun i ->
        let d = Float.max ys.(i) 1.0 in
        (xs.(i + 1) -. xs.(i)) /. (d *. d))
  in
  let k = min buckets m in
  (* Buckets must be contiguous in x (not in y), so this is a direct
     DP over segments rather than a call into Kmeans1d.  Prefix sums
     make the weighted relative-error cost of a bucket i..j O(1). *)
  let w = Array.make (m + 1) 0.0 in
  let wy = Array.make (m + 1) 0.0 in
  let wyy = Array.make (m + 1) 0.0 in
  for i = 0 to m - 1 do
    w.(i + 1) <- w.(i) +. ws.(i);
    wy.(i + 1) <- wy.(i) +. (ws.(i) *. ys.(i));
    wyy.(i + 1) <- wyy.(i) +. (ws.(i) *. ys.(i) *. ys.(i))
  done;
  let seg_cost i j =
    let sw = w.(j + 1) -. w.(i) in
    let swy = wy.(j + 1) -. wy.(i) in
    let swyy = wyy.(j + 1) -. wyy.(i) in
    if sw <= 0.0 then (0.0, 0.0)
    else (swy /. sw, Float.max 0.0 (swyy -. (swy *. swy /. sw)))
  in
  let dp = Array.make_matrix (k + 1) (m + 1) infinity in
  let arg = Array.make_matrix (k + 1) (m + 1) 0 in
  dp.(0).(0) <- 0.0;
  for b = 1 to k do
    for j = 1 to m do
      for i = b - 1 to j - 1 do
        if dp.(b - 1).(i) < infinity then begin
          let _, cst = seg_cost i (j - 1) in
          let total = dp.(b - 1).(i) +. cst in
          if total < dp.(b).(j) then begin
            dp.(b).(j) <- total;
            arg.(b).(j) <- i
          end
        end
      done
    done
  done;
  let cut = Array.make (k + 1) 0 in
  cut.(k) <- m;
  let j = ref m in
  for b = k downto 1 do
    let i = arg.(b).(!j) in
    cut.(b - 1) <- i;
    j := i
  done;
  let bounds = Array.init (k + 1) (fun b -> xs.(cut.(b))) in
  let values =
    Array.init k (fun b ->
        if cut.(b) >= cut.(b + 1) then 0.0 else fst (seg_cost cut.(b) (cut.(b + 1) - 1)))
  in
  { bounds; values }
