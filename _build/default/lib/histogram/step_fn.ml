module I = Cq_interval.Interval

(* Canonical form: xs strictly increasing, ys.(i) is the value on
   [xs.(i), xs.(i+1)); the value is 0 before xs.(0); consecutive ys
   differ. *)
type t = {
  xs : float array;
  ys : float array;
}

let zero = { xs = [||]; ys = [||] }

let canonicalise pairs =
  (* Drop no-op breaks (same value as the running value). *)
  let out = Cq_util.Vec.create () in
  let current = ref 0.0 in
  Array.iter
    (fun (x, v) ->
      if v <> !current then begin
        Cq_util.Vec.push out (x, v);
        current := v
      end)
    pairs;
  let arr = Cq_util.Vec.to_array out in
  { xs = Array.map fst arr; ys = Array.map snd arr }

let of_breaks pairs =
  let n = Array.length pairs in
  for i = 1 to n - 1 do
    if fst pairs.(i - 1) >= fst pairs.(i) then
      invalid_arg "Step_fn.of_breaks: x values must be strictly increasing"
  done;
  canonicalise pairs

let of_intervals ivs =
  (* Events: +1 at lo, -1 just after hi (closed interval semantics,
     exact in floating point via Float.succ). *)
  let events = Cq_util.Vec.create () in
  Array.iter
    (fun iv ->
      if not (I.is_empty iv) then begin
        Cq_util.Vec.push events (I.lo iv, 1);
        Cq_util.Vec.push events (Float.succ (I.hi iv), -1)
      end)
    ivs;
  Cq_util.Vec.sort (fun (a, _) (b, _) -> Float.compare a b) events;
  let out = Cq_util.Vec.create () in
  let level = ref 0 in
  let i = ref 0 in
  let n = Cq_util.Vec.length events in
  while !i < n do
    let x = fst (Cq_util.Vec.get events !i) in
    while !i < n && fst (Cq_util.Vec.get events !i) = x do
      level := !level + snd (Cq_util.Vec.get events !i);
      incr i
    done;
    Cq_util.Vec.push out (x, float_of_int !level)
  done;
  canonicalise (Cq_util.Vec.to_array out)

let eval t x =
  (* Rightmost break <= x. *)
  let n = Array.length t.xs in
  if n = 0 || x < t.xs.(0) then 0.0
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if t.xs.(mid) <= x then lo := mid else hi := mid - 1
    done;
    t.ys.(!lo)
  end

let breaks t = Array.init (Array.length t.xs) (fun i -> (t.xs.(i), t.ys.(i)))

let num_pieces t = Array.length t.xs

let add a b =
  let na = Array.length a.xs and nb = Array.length b.xs in
  if na = 0 then b
  else if nb = 0 then a
  else begin
    let out = Cq_util.Vec.create () in
    let ia = ref 0 and ib = ref 0 in
    let va = ref 0.0 and vb = ref 0.0 in
    while !ia < na || !ib < nb do
      let xa = if !ia < na then a.xs.(!ia) else infinity in
      let xb = if !ib < nb then b.xs.(!ib) else infinity in
      let x = Float.min xa xb in
      if xa = x then begin
        va := a.ys.(!ia);
        incr ia
      end;
      if xb = x then begin
        vb := b.ys.(!ib);
        incr ib
      end;
      Cq_util.Vec.push out (x, !va +. !vb)
    done;
    canonicalise (Cq_util.Vec.to_array out)
  end

let sum_all fns =
  (* Balanced pairwise summation keeps the merge cost O(p log g). *)
  let rec round = function
    | [] -> zero
    | [ f ] -> f
    | fs ->
        let rec pair = function
          | a :: b :: rest -> add a b :: pair rest
          | tail -> tail
        in
        round (pair fs)
  in
  round fns

let clip t ~lo ~hi =
  let v_lo = eval t lo in
  let inside =
    breaks t |> Array.to_list
    |> List.filter (fun (x, _) -> x > lo && x < hi)
  in
  let pairs = ((lo, v_lo) :: inside) @ [ (hi, 0.0) ] in
  canonicalise (Array.of_list pairs)

let equal_on a b ~probes = Array.for_all (fun x -> eval a x = eval b x) probes
