(* Tests for the relation layer: table index consistency and the
   Table-1 workload generators. *)

module I = Cq_interval.Interval
module Table = Cq_relation.Table
module Tuple = Cq_relation.Tuple
module W = Cq_relation.Workload
module Rng = Cq_util.Rng

let tuples_gen =
  QCheck2.Gen.(
    list_size (int_range 0 200)
      (map2 (fun b c -> (float_of_int b, float_of_int c)) (int_bound 20) (int_bound 20)))

let prop_s_table_indexes_agree =
  QCheck2.Test.make ~name:"s_table: B and (B,C) indexes stay consistent" ~count:300
    QCheck2.Gen.(pair tuples_gen (list_size (int_range 0 50) (int_bound 300)))
    (fun (rows, deletions) ->
      let tuples = Array.of_list (List.mapi (fun sid (b, c) -> { Tuple.sid; b; c }) rows) in
      let t = Table.of_s_tuples tuples in
      Table.Fbt.check_invariants (Table.s_by_b t);
      Table.Pbt.check_invariants (Table.s_by_bc t);
      (* Delete a few specific tuples. *)
      let deleted = Hashtbl.create 16 in
      List.iter
        (fun i ->
          if Array.length tuples > 0 then begin
            let s = tuples.(i mod Array.length tuples) in
            if (not (Hashtbl.mem deleted s.Tuple.sid)) && Table.delete_s t s then
              Hashtbl.add deleted s.Tuple.sid ()
          end)
        deletions;
      let survivors =
        Array.to_list tuples |> List.filter (fun s -> not (Hashtbl.mem deleted s.Tuple.sid))
      in
      let by_b = ref [] in
      Table.iter_s t (fun s -> by_b := s :: !by_b);
      let by_bc = ref [] in
      Table.Pbt.iter (Table.s_by_bc t) (fun _ s -> by_bc := s :: !by_bc);
      let norm l = List.sort compare (List.map (fun s -> s.Tuple.sid) l) in
      Table.s_size t = List.length survivors
      && norm !by_b = norm survivors
      && norm !by_bc = norm survivors)

let prop_r_table_round_trip =
  QCheck2.Test.make ~name:"r_table: insert/delete round trip" ~count:200 tuples_gen
    (fun rows ->
      let t = Table.create_r () in
      let tuples = List.mapi (fun rid (a, b) -> { Tuple.rid; a; b }) rows in
      List.iter (Table.insert_r t) tuples;
      List.iteri (fun i r -> if i mod 2 = 0 then ignore (Table.delete_r t r)) tuples;
      Table.r_size t = List.length tuples - ((List.length tuples + 1) / 2))

let test_workload_distributions () =
  let c = W.default in
  let rng = Rng.create 5 in
  let ss = W.gen_s_tuples c rng ~n:20_000 in
  (* S.B clamped to the domain and quantised. *)
  Array.iter
    (fun (s : Tuple.s) ->
      if s.b < c.W.domain_lo || s.b > c.W.domain_hi then Alcotest.fail "S.B out of domain";
      if Float.rem s.b c.W.b_quantum <> 0.0 then Alcotest.fail "S.B not on the quantum grid")
    ss;
  let mean = Array.fold_left (fun acc (s : Tuple.s) -> acc +. s.b) 0.0 ss /. 20_000.0 in
  if Float.abs (mean -. c.W.sb_mu) > 50.0 then Alcotest.failf "S.B mean off: %g" mean;
  (* R.A uniform: mean ~ 5000. *)
  let rs = W.gen_r_tuples c rng ~n:20_000 in
  let mean_a = Array.fold_left (fun acc (r : Tuple.r) -> acc +. r.a) 0.0 rs /. 20_000.0 in
  if Float.abs (mean_a -. 5000.0) > 100.0 then Alcotest.failf "R.A mean off: %g" mean_a


let test_table1_query_generators () =
  let c = W.default in
  let rng = Rng.create 11 in
  let pairs = W.gen_select_ranges c rng ~n:10_000 in
  (* rangeA midpoints normal around 5000; rangeC midpoints uniform. *)
  let mid_a = Array.map (fun (a, _) -> I.midpoint a) pairs in
  let mid_c = Array.map (fun (_, cr) -> I.midpoint cr) pairs in
  let mean xs = Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs) in
  if Float.abs (mean mid_a -. 5000.0) > 100.0 then Alcotest.fail "rangeA midpoint mean off";
  if Float.abs (mean mid_c -. 5000.0) > 100.0 then Alcotest.fail "rangeC midpoint mean off";
  let sd xs =
    let m = mean xs in
    sqrt (Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs /. float_of_int (Array.length xs))
  in
  (* Normal(5000,1500) vs Uni(0,10000): very different spreads. *)
  if sd mid_a > 2000.0 then Alcotest.fail "rangeA midpoints too spread";
  if sd mid_c < 2500.0 then Alcotest.fail "rangeC midpoints not uniform-spread";
  (* Lengths are non-negative everywhere. *)
  Array.iter
    (fun (a, cr) ->
      if I.length a < 0.0 || I.length cr < 0.0 then Alcotest.fail "negative length")
    pairs;
  let bands = W.gen_band_ranges c rng ~n:10_000 in
  let mean_len = mean (Array.map I.length bands) in
  (* Normal(400,150) truncated at 0: mean close to 400. *)
  if Float.abs (mean_len -. 400.0) > 25.0 then Alcotest.failf "band length mean off: %g" mean_len

let test_clustered_generator () =
  let rng = Rng.create 7 in
  let ranges =
    W.gen_clustered_ranges ~scattered_len:(5.0, 2.0) rng ~n:5000 ~n_clusters:10
      ~clustered_frac:1.0 ~domain:(0.0, 10_000.0) ~cluster_halfwidth:40.0 ~len_mu:200.0
      ~len_sigma:50.0
  in
  (* Fully clustered: the canonical partition collapses to roughly the
     cluster count. *)
  let tau = Hotspot_core.Stabbing.tau Fun.id ranges in
  if tau > 15 then Alcotest.failf "expected ~10 groups, got %d" tau;
  (* Fully scattered short ranges: many groups. *)
  let scattered =
    W.gen_clustered_ranges ~scattered_len:(5.0, 2.0) rng ~n:5000 ~n_clusters:10
      ~clustered_frac:0.0 ~domain:(0.0, 10_000.0) ~cluster_halfwidth:40.0 ~len_mu:200.0
      ~len_sigma:50.0
  in
  let tau_s = Hotspot_core.Stabbing.tau Fun.id scattered in
  if tau_s < 200 then Alcotest.failf "expected scattered to fragment, got %d groups" tau_s

let test_clustered_generator_validation () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "bad clusters"
    (Invalid_argument "Workload.gen_clustered_ranges: n_clusters must be > 0") (fun () ->
      ignore
        (W.gen_clustered_ranges rng ~n:10 ~n_clusters:0 ~clustered_frac:0.5
           ~domain:(0.0, 1.0) ~cluster_halfwidth:1.0 ~len_mu:1.0 ~len_sigma:0.1));
  Alcotest.check_raises "bad frac"
    (Invalid_argument "Workload.gen_clustered_ranges: clustered_frac must be in [0,1]")
    (fun () ->
      ignore
        (W.gen_clustered_ranges rng ~n:10 ~n_clusters:2 ~clustered_frac:1.5
           ~domain:(0.0, 1.0) ~cluster_halfwidth:1.0 ~len_mu:1.0 ~len_sigma:0.1))

let test_scale_lengths () =
  let ranges = [| I.make 0.0 10.0; I.make 5.0 5.0 |] in
  let scaled = W.scale_lengths ranges ~factor:0.5 in
  Alcotest.(check (float 1e-9)) "half length" 5.0 (I.length scaled.(0));
  Alcotest.(check (float 1e-9)) "same midpoint" 5.0 (I.midpoint scaled.(0));
  Alcotest.(check (float 1e-9)) "point stays" 0.0 (I.length scaled.(1))

(* ------------------------------- Batch -------------------------------- *)

module B = Cq_relation.Batch

let test_batch_push_get () =
  let b = B.create () in
  for i = 0 to 99 do
    B.push b ~x:(float_of_int i) ~y:(float_of_int (i * 2))
  done;
  Alcotest.(check int) "length" 100 (B.length b);
  for i = 0 to 99 do
    Alcotest.(check (float 0.0)) "x" (float_of_int i) (B.x b i);
    Alcotest.(check (float 0.0)) "y" (float_of_int (i * 2)) (B.y b i);
    Alcotest.(check int) "id unset" (-1) (B.id b i)
  done;
  B.check_invariants b

let test_batch_clear_reuse () =
  let b = B.create ~capacity:4 () in
  B.push b ~x:1.0 ~y:2.0;
  B.clear b;
  Alcotest.(check bool) "empty" true (B.is_empty b);
  B.push b ~x:3.0 ~y:4.0;
  Alcotest.(check (float 0.0)) "reused slot" 3.0 (B.x b 0);
  B.check_invariants b

let test_batch_slice_aliases () =
  let b = B.of_rows [| (1.0, 10.0); (2.0, 20.0); (3.0, 30.0); (4.0, 40.0) |] in
  let v = B.slice b ~pos:1 ~len:2 in
  Alcotest.(check bool) "is view" true (B.is_view v);
  Alcotest.(check int) "view length" 2 (B.length v);
  Alcotest.(check (float 0.0)) "view x" 2.0 (B.x v 0);
  Alcotest.(check (float 0.0)) "view y" 30.0 (B.y v 1);
  (* Sub-slice composes offsets. *)
  let vv = B.slice v ~pos:1 ~len:1 in
  Alcotest.(check (float 0.0)) "sub-slice x" 3.0 (B.x vv 0);
  (* In-place root writes are visible through the view (no copy). *)
  B.set_id b 1 77;
  Alcotest.(check int) "alias id" 77 (B.id v 0);
  (match B.push v ~x:0.0 ~y:0.0 with
  | () -> Alcotest.fail "view push accepted"
  | exception Cq_util.Error.Cq_error (Cq_util.Error.Invalid_parameter { value; _ }) ->
      Alcotest.(check string) "view push rejected" "read-only view" value);
  (match B.slice b ~pos:3 ~len:2 with
  | _ -> Alcotest.fail "out-of-bounds slice accepted"
  | exception Cq_util.Error.Cq_error (Cq_util.Error.Invalid_parameter { name; _ }) ->
      Alcotest.(check string) "slice oob rejected" "pos/len" name);
  B.check_invariants b;
  B.check_invariants v

let test_batch_seal () =
  let b = B.of_rows [| (1.0, 2.0) |] in
  B.seal b;
  Alcotest.(check bool) "sealed" true (B.sealed b);
  (match B.push b ~x:0.0 ~y:0.0 with
  | () -> Alcotest.fail "sealed push accepted"
  | exception Cq_util.Error.Cq_error (Cq_util.Error.Invalid_parameter { value; _ }) ->
      Alcotest.(check string) "sealed push rejected" "sealed batch" value);
  (match B.clear b with
  | () -> Alcotest.fail "sealed clear accepted"
  | exception Cq_util.Error.Cq_error (Cq_util.Error.Invalid_parameter { value; _ }) ->
      Alcotest.(check string) "sealed clear rejected" "sealed batch" value);
  (* Reads stay legal while sealed. *)
  Alcotest.(check (float 0.0)) "sealed read" 1.0 (B.x b 0);
  B.unseal b;
  B.push b ~x:3.0 ~y:4.0;
  Alcotest.(check int) "push after unseal" 2 (B.length b)

let test_batch_tuple_round_trip () =
  let rng = Rng.create 5 in
  let ss = W.gen_s_tuples W.default rng ~n:200 in
  let rs = W.gen_r_tuples W.default rng ~n:200 in
  let sb = B.of_s_tuples ss and rb = B.of_r_tuples rs in
  Alcotest.(check bool) "s round trip" true (B.to_s_tuples sb = ss);
  Alcotest.(check bool) "r round trip" true (B.to_r_tuples rb = rs);
  (* Batch generators replay the tuple generators' stream exactly. *)
  let rng2 = Rng.create 5 in
  let sb2 = W.gen_s_batch W.default rng2 ~n:200 in
  let rb2 = W.gen_r_batch W.default rng2 ~n:200 in
  Alcotest.(check bool) "gen_s_batch matches" true (B.to_s_tuples sb2 = ss);
  Alcotest.(check bool) "gen_r_batch matches" true (B.to_r_tuples rb2 = rs);
  (* Table bulk-load from the batch agrees with the tuple bulk-load. *)
  let t1 = Table.of_s_tuples ss and t2 = Table.of_s_batch sb in
  Alcotest.(check int) "table sizes" (Table.s_size t1) (Table.s_size t2)

let prop_batch_models_rows =
  QCheck2.Test.make ~name:"batch models row array" ~count:300
    QCheck2.Gen.(
      list_size (int_range 0 100)
        (map2 (fun a b -> (float_of_int a, float_of_int b)) (int_bound 50) (int_bound 50)))
    (fun rows ->
      let arr = Array.of_list rows in
      let b = B.of_rows arr in
      B.check_invariants b;
      B.to_rows b = arr)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "cq_relation"
    [
      ( "table",
        [ qc prop_s_table_indexes_agree; qc prop_r_table_round_trip ] );
      ( "batch",
        [
          Alcotest.test_case "push/get" `Quick test_batch_push_get;
          Alcotest.test_case "clear and reuse" `Quick test_batch_clear_reuse;
          Alcotest.test_case "slice aliasing" `Quick test_batch_slice_aliases;
          Alcotest.test_case "seal/unseal" `Quick test_batch_seal;
          Alcotest.test_case "tuple round trips" `Quick test_batch_tuple_round_trip;
          qc prop_batch_models_rows;
        ] );
      ( "workload",
        [
          Alcotest.test_case "distributions" `Slow test_workload_distributions;
          Alcotest.test_case "Table-1 query generators" `Slow test_table1_query_generators;
          Alcotest.test_case "clustered generator" `Quick test_clustered_generator;
          Alcotest.test_case "validation" `Quick test_clustered_generator_validation;
          Alcotest.test_case "scale_lengths" `Quick test_scale_lengths;
        ] );
    ]
