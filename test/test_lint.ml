(* Self-test harness for cqlint: fixture snippets asserting each
   rule's hits AND non-hits, waiver-file parsing (bad lines rejected
   with a usable error), waiver application, and a meta-test that the
   analyzer runs clean on this repository itself. *)

open Cq_lint

(* ------------------------------------------------------------------ *)
(* Fixture helpers                                                      *)
(* ------------------------------------------------------------------ *)

let lint ?(path = "lib/fixture.ml") src =
  match Engine.lint_source ~path src with
  | Ok ds -> ds
  | Error e -> Alcotest.failf "fixture failed to parse: %s" e

let lines_of rule ds =
  List.filter_map
    (fun (d : Diagnostic.t) -> if Rule.equal d.rule rule then Some d.line else None)
    ds

let check_lines what rule expected ds =
  Alcotest.(check (list int)) what expected (lines_of rule ds)

(* ------------------------------------------------------------------ *)
(* CQL001 no-polymorphic-compare                                        *)
(* ------------------------------------------------------------------ *)

let cql001_hits () =
  let ds =
    lint
      {|
let f xs = List.sort compare xs
let g x y = compare x y
let h x = x = None
let i xs = xs <> []
let j x = min 0.0 x
let k x = Hashtbl.hash x
let l s = s = "literal"
let m x xs = List.mem (Some x) xs
|}
  in
  check_lines "one hit per corrupted line" Rule.CQL001 [ 2; 3; 4; 5; 6; 7; 8; 9 ] ds

let cql001_non_hits () =
  let ds =
    lint
      {|
let f xs = List.sort Int.compare xs
let compare a b = Float.compare a b
let g xs = List.sort compare xs
let h x = match x with None -> true | Some _ -> false
let i n m = min n m
let j x = x = 3
let k c = c = 'x'
module M = struct
  let compare = Int.compare
  let sorted xs = List.sort compare xs
end
let l xs = List.sort M.compare xs
type r = { next : int option }
let m () = { next = None }
|}
  in
  check_lines "monomorphic/shadowed/immediate uses are clean" Rule.CQL001 [] ds

let cql001_shadow_scoping () =
  (* A local [compare] binding suppresses the rule only inside its
     scope — the module-level use after it must still be flagged. *)
  let ds =
    lint
      {|
let f xs =
  let compare a b = Int.compare a b in
  List.sort compare xs
let g xs = List.sort compare xs
|}
  in
  check_lines "shadow does not leak out of its scope" Rule.CQL001 [ 5 ] ds

let cql001_applies_to_bin () =
  let ds = lint ~path:"bin/fixture.ml" "let f x y = compare x y" in
  check_lines "CQL001 also covers bin/" Rule.CQL001 [ 1 ] ds

let cql001_span_accuracy () =
  let ds = lint "let f xs = List.sort compare xs" in
  match ds with
  | [ d ] ->
      Alcotest.(check int) "line" 1 d.line;
      Alcotest.(check int) "start col points at the compare ident" 21 d.col;
      Alcotest.(check int) "end col" 28 d.end_col
  | _ -> Alcotest.failf "expected exactly one finding, got %d" (List.length ds)

(* ------------------------------------------------------------------ *)
(* CQL002 error-discipline                                              *)
(* ------------------------------------------------------------------ *)

let cql002_hits () =
  let ds =
    lint
      {|
let f () = failwith "boom"
let g x = if x < 0 then invalid_arg "g: negative"
let h () = raise (Failure "bad")
let i fmt = Printf.ksprintf failwith fmt
|}
  in
  check_lines "failwith/invalid_arg/Failure all flagged" Rule.CQL002 [ 2; 3; 4; 5 ] ds

let cql002_non_hits () =
  let ds =
    lint
      {|
let f () = Cq_util.Error.corrupt ~structure:"fixture" "broken: %d" 3
let g () = try () with Failure _ -> ()
let h e = match e with Invalid_argument m -> m | _ -> ""
|}
  in
  check_lines "typed raises and handler patterns are clean" Rule.CQL002 [] ds

let cql002_lib_only () =
  let ds = lint ~path:"bin/fixture.ml" {|let f () = failwith "cli code may die"|} in
  check_lines "CQL002 does not apply to bin/" Rule.CQL002 [] ds

(* ------------------------------------------------------------------ *)
(* CQL003 global-mutable-state                                          *)
(* ------------------------------------------------------------------ *)

let cql003_hits () =
  let ds =
    lint
      {|
let table = Hashtbl.create 16
let switch = ref false
let buf = Buffer.create 80
module M = struct
  let inner = ref 0
end
|}
  in
  check_lines "module-level mutable allocations flagged" Rule.CQL003 [ 2; 3; 4; 6 ] ds

let cql003_non_hits () =
  let ds =
    lint
      {|
let make () = ref 0
let f () =
  let r = ref 0 in
  incr r;
  !r
module Make (X : sig end) = struct
  let state = ref 0
end
let pure = 42
|}
  in
  check_lines "constructor-local and functor state are clean" Rule.CQL003 [] ds

let cql003_lib_only () =
  let ds = lint ~path:"bin/fixture.ml" "let cache = Hashtbl.create 16" in
  check_lines "CQL003 does not apply to bin/" Rule.CQL003 [] ds

(* ------------------------------------------------------------------ *)
(* CQL004 obj-magic-ban                                                 *)
(* ------------------------------------------------------------------ *)

let cql004_hits () =
  let ds =
    lint {|
let f x = Obj.magic x
let g x = Obj.repr x
|}
  in
  check_lines "Obj.magic and Obj.repr flagged" Rule.CQL004 [ 2; 3 ] ds

let cql004_everywhere () =
  let ds = lint ~path:"bin/fixture.ml" "let f x = Obj.magic x" in
  check_lines "CQL004 covers bin/ too" Rule.CQL004 [ 1 ] ds

(* ------------------------------------------------------------------ *)
(* CQL005 mli-coverage (needs a real directory tree)                    *)
(* ------------------------------------------------------------------ *)

let with_temp_tree files f =
  (* temp_file gives us a unique path; reuse the name as a directory. *)
  let root = Filename.temp_file "cqlint_test" ".d" in
  Sys.remove root;
  let rec mkdirs d =
    if not (Sys.file_exists d) then begin
      mkdirs (Filename.dirname d);
      Sys.mkdir d 0o755
    end
  in
  List.iter
    (fun (rel, contents) ->
      let full = Filename.concat root rel in
      mkdirs (Filename.dirname full);
      Out_channel.with_open_bin full (fun oc -> Out_channel.output_string oc contents))
    files;
  Fun.protect
    ~finally:(fun () ->
      let rec rm d =
        if Sys.is_directory d then begin
          Array.iter (fun n -> rm (Filename.concat d n)) (Sys.readdir d);
          Sys.rmdir d
        end
        else Sys.remove d
      in
      if Sys.file_exists root then rm root)
    (fun () -> f root)

let cql005_missing_mli () =
  with_temp_tree
    [ ("lib/a.ml", "let x = 1\n"); ("lib/b.ml", "let y = 2\n"); ("lib/b.mli", "val y : int\n") ]
    (fun root ->
      let report = Engine.run ~root () in
      Alcotest.(check (list string)) "a.ml lacks an interface" [ "lib/a.ml" ]
        (List.filter_map
           (fun (d : Diagnostic.t) ->
             if Rule.equal d.rule Rule.CQL005 then Some d.path else None)
           report.findings))

let cql005_waived_via_file () =
  with_temp_tree
    [
      ("lib/a.ml", "let x = 1\n");
      (".cqlint", "CQL005 lib/a.ml -- intf-only module pattern, fixture\n");
    ]
    (fun root ->
      let report = Engine.run ~root () in
      Alcotest.(check bool) "clean with waiver" true (Engine.clean report);
      Alcotest.(check int) "one waived" 1 (List.length report.waived))

let stale_waiver_fails () =
  with_temp_tree
    [
      ("lib/a.ml", "let x = 1\n");
      ("lib/a.mli", "val x : int\n");
      (".cqlint", "CQL005 lib/a.ml -- no longer true: the mli exists now\n");
    ]
    (fun root ->
      let report = Engine.run ~root () in
      Alcotest.(check bool) "stale waiver breaks cleanliness" false (Engine.clean report);
      Alcotest.(check int) "reported as unused" 1 (List.length report.unused_waivers))

(* ------------------------------------------------------------------ *)
(* Waiver parsing                                                       *)
(* ------------------------------------------------------------------ *)

let parse_one s =
  match Waiver.parse_line ~file:".cqlint" ~source_line:1 s with
  | Ok v -> Ok v
  | Error e -> Error e.reason

let waiver_parse_good () =
  (match parse_one "CQL001 lib/x.ml:12 -- floats compared polymorphically" with
  | Ok (Some w) ->
      Alcotest.(check string) "path" "lib/x.ml" w.path;
      Alcotest.(check (option int)) "line" (Some 12) w.line;
      Alcotest.(check string) "justification" "floats compared polymorphically" w.justification
  | _ -> Alcotest.fail "line-pinned waiver should parse");
  (match parse_one "cql002 ./lib/y.ml -- guards (lowercase id, ./ prefix ok)" with
  | Ok (Some w) ->
      Alcotest.(check string) "normalized path" "lib/y.ml" w.path;
      Alcotest.(check (option int)) "file-level" None w.line
  | _ -> Alcotest.fail "file-level waiver should parse");
  (match parse_one "# just a comment" with
  | Ok None -> ()
  | _ -> Alcotest.fail "comments are skipped");
  match parse_one "   " with
  | Ok None -> ()
  | _ -> Alcotest.fail "blank lines are skipped"

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.equal (String.sub hay i n) needle || go (i + 1)) in
  n = 0 || go 0

let expect_reject what s fragment =
  match parse_one s with
  | Ok _ -> Alcotest.failf "%s: %S should have been rejected" what s
  | Error reason ->
      if not (contains ~needle:fragment reason) then
        Alcotest.failf "%s: error %S does not mention %S" what reason fragment

let waiver_parse_bad () =
  expect_reject "unknown rule" "CQL999 lib/x.ml -- nope" "unknown rule";
  expect_reject "missing justification" "CQL001 lib/x.ml" "justification";
  expect_reject "empty justification" "CQL001 lib/x.ml -- " "justification";
  expect_reject "zero line" "CQL001 lib/x.ml:0 -- reason" "1-based";
  expect_reject "bad line suffix" "CQL001 lib/x.ml: -- reason" "empty line number";
  expect_reject "no site" "CQL001 -- reason" "missing path"

let waiver_parse_reports_all_bad_lines () =
  let contents = "CQL001 lib/a.ml -- fine\nCQL999 b.ml -- bad\nCQL001 nope\n" in
  match Waiver.parse ~file:".cqlint" contents with
  | Ok _ -> Alcotest.fail "expected errors"
  | Error es ->
      Alcotest.(check (list int)) "both bad lines reported, 1-based" [ 2; 3 ]
        (List.map (fun (e : Waiver.parse_error) -> e.source_line) es)

let waiver_covers () =
  let d =
    match lint "let f xs = List.sort compare xs" with
    | [ d ] -> d
    | ds -> Alcotest.failf "expected one finding, got %d" (List.length ds)
  in
  let w line =
    { Waiver.rule = Rule.CQL001; path = "lib/fixture.ml"; line; justification = "j"; source_line = 1 }
  in
  Alcotest.(check bool) "file-level covers" true (Waiver.covers (w None) d);
  Alcotest.(check bool) "matching line covers" true (Waiver.covers (w (Some 1)) d);
  Alcotest.(check bool) "other line does not" false (Waiver.covers (w (Some 9)) d);
  Alcotest.(check bool) "other rule does not" false
    (Waiver.covers { (w None) with rule = Rule.CQL004 } d)

let syntax_error_is_reported () =
  match Engine.lint_source ~path:"lib/broken.ml" "let let = in" with
  | Error msg -> Alcotest.(check bool) "mentions the path" true (contains ~needle:"broken.ml" msg)
  | Ok _ -> Alcotest.fail "unparsable source must not lint clean"

(* ------------------------------------------------------------------ *)
(* CQL006 domain-shared-state                                           *)
(* ------------------------------------------------------------------ *)

let cql006_hits () =
  let ds =
    lint
      {|
let counter = ref 0
let table = Hashtbl.create 16
let start () = Domain.spawn (fun () -> incr counter)
let fill () = Domain.spawn (fun () -> Hashtbl.replace table 1 2)
let leak () =
  let local = ref 0 in
  Domain.spawn (fun () -> local := 1)
|}
  in
  check_lines "unguarded toplevel and captured state flagged" Rule.CQL006 [ 4; 5; 8 ] ds

let cql006_transitive () =
  (* The spawn body is a module-level function: the scan follows the
     reference and finds the mutation inside it. *)
  let ds =
    lint
      {|
let state = ref 0
let work () = incr state
let start () = Domain.spawn work
|}
  in
  check_lines "mutation inside a spawned file-local fn" Rule.CQL006 [ 3 ] ds

let cql006_mutex_guarded () =
  let ds =
    lint
      {|
let m = Mutex.create ()
let counter = ref 0
let table = Hashtbl.create 16
let protected () = Domain.spawn (fun () -> Mutex.protect m (fun () -> incr counter))
let locked () =
  Domain.spawn (fun () ->
      Mutex.lock m;
      Hashtbl.replace table 1 2;
      Mutex.unlock m)
|}
  in
  check_lines "Mutex.protect and lock/unlock spans are guards" Rule.CQL006 [] ds

let cql006_atomic_and_handover () =
  let ds =
    lint
      {|
let hits = Atomic.make 0
let bump () = Domain.spawn (fun () -> Atomic.incr hits)
let worker st = st := 1
let handover st = Domain.spawn (fun () -> worker st)
|}
  in
  check_lines "atomics and parameter handover are clean" Rule.CQL006 [] ds

let cql006_no_spawn_no_findings () =
  let ds = lint {|
let counter = ref 0
let bump () = incr counter
|} in
  check_lines "mutable state without Domain.spawn is CQL003's business" Rule.CQL006 [] ds

(* ------------------------------------------------------------------ *)
(* CQL007 no-blocking-in-event-loop                                     *)
(* ------------------------------------------------------------------ *)

let ev_path = "lib/net/server.ml"

let cql007_hits () =
  let ds =
    lint ~path:ev_path
      {|
let pull fd b = ignore (Unix.read fd b 0 16)
let nap () = Unix.sleepf 0.1
let rec pump () = while true do pump () done
|}
  in
  check_lines "blocking calls and while-true flagged" Rule.CQL007 [ 2; 3; 4 ] ds

let cql007_scoped_to_event_loop () =
  let ds = lint ~path:"lib/other/io.ml" "let pull fd b = ignore (Unix.read fd b 0 16)" in
  check_lines "CQL007 only covers the event-loop modules" Rule.CQL007 [] ds

let cql007_blocking_ok_expression () =
  let ds =
    lint ~path:ev_path
      "let pull fd b = ignore (Unix.read fd b 0 16 [@cq.blocking_ok])"
  in
  check_lines "expression attribute waives the call" Rule.CQL007 [] ds

let cql007_blocking_ok_binding () =
  let ds =
    lint ~path:ev_path
      {|
let[@cq.blocking_ok] drain fd b =
  while Unix.read fd b 0 1 > 0 do
    ()
  done
|}
  in
  check_lines "binding attribute covers the whole body" Rule.CQL007 [] ds

let cql007_nonblocking_calls_clean () =
  let ds =
    lint ~path:ev_path
      {|
let shut fd = Unix.close fd
let nb fd = Unix.set_nonblock fd
|}
  in
  check_lines "close/setsockopt-family calls never block" Rule.CQL007 [] ds

(* ------------------------------------------------------------------ *)
(* CQL008 hot-path-allocation                                           *)
(* ------------------------------------------------------------------ *)

let cql008_hits () =
  let ds =
    lint
      {|
let[@cq.hot] f g x = g (fun y -> y + x)
let[@cq.hot] pair a b = (a, b)
let[@cq.hot] opt x = Some x
let[@cq.hot] cat a b = a ^ b
let[@cq.hot] len xs = List.length xs
|}
  in
  check_lines "closure/tuple/variant/^/List all flagged" Rule.CQL008 [ 2; 3; 4; 5; 6 ] ds

let cql008_transitive_callee () =
  (* [helper] carries no annotation but is called from a hot function:
     the allocation inside it is on the hot path. *)
  let ds =
    lint {|
let helper x = [ x ]
let[@cq.hot] entry x = helper x
|}
  in
  check_lines "local callee inherits hotness" Rule.CQL008 [ 2 ] ds

let cql008_partial_application () =
  let ds =
    lint {|
let add3 a b c = a + b + c
let[@cq.hot] f x = add3 x 1
|}
  in
  check_lines "partial application of a local fn allocates" Rule.CQL008 [ 3 ] ds

let cql008_cold_cut () =
  let ds =
    lint
      {|
let[@cq.cold] slow x = [ x; x ]
let[@cq.hot] fast x = if x > 0 then x else List.length (slow x)
|}
  in
  (* [slow]'s list allocations are exempt ([@cq.cold] cuts propagation);
     the List.length on the hot body itself still counts. *)
  check_lines "[@cq.cold] stops propagation, hot body still checked" Rule.CQL008 [ 3 ] ds

let cql008_non_hot_clean () =
  let ds = lint "let f xs = List.map (fun x -> (x, x)) xs" in
  check_lines "no annotation, no rule" Rule.CQL008 [] ds

let cql008_result_and_raise_exempt () =
  let ds =
    lint
      {|
let[@cq.hot] checked x =
  if x < 0 then Error "negative"
  else if x > 100 then raise (Invalid_argument "too big")
  else Ok x
|}
  in
  check_lines "tail Ok/Error and raise payloads are exempt" Rule.CQL008 [] ds

let cql008_gated_and_loops_clean () =
  let ds =
    lint
      {|
let enabled () = false
let[@cq.hot] observe x = if enabled () then Some x else None
let[@cq.hot] sum a =
  let n = ref 0 in
  for i = 0 to Array.length a - 1 do
    n := !n + Array.unsafe_get a i
  done;
  !n
|}
  in
  check_lines "metrics-gated branch and ref loops are clean" Rule.CQL008 [] ds

(* ------------------------------------------------------------------ *)
(* CQL009 unsafe-access-discipline                                      *)
(* ------------------------------------------------------------------ *)

let cql009_hits () =
  let ds =
    lint
      {|
let f a i = Array.unsafe_get a i
let g b i x = Bytes.unsafe_set b i x
let h st i = Batch.unsafe_x st i
|}
  in
  check_lines "unsafe accessors outside [@cq.hot] flagged" Rule.CQL009 [ 2; 3; 4 ] ds

let cql009_hot_is_legal () =
  let ds = lint "let[@cq.hot] f a i = Array.unsafe_get a i" in
  check_lines "inside [@cq.hot] the contract holds" Rule.CQL009 [] ds

let cql009_transitively_hot_is_legal () =
  let ds =
    lint {|
let get a i = Array.unsafe_get a i
let[@cq.hot] entry a = get a 0
|}
  in
  check_lines "transitive hotness also legalises" Rule.CQL009 [] ds

let cql009_checked_access_clean () =
  let ds = lint "let f a i = Array.get a i" in
  check_lines "bounds-checked access is always fine" Rule.CQL009 [] ds

(* ------------------------------------------------------------------ *)
(* CQL010 no-swallowed-exceptions                                       *)
(* ------------------------------------------------------------------ *)

let cql010_hits () =
  let ds =
    lint
      {|
let f h = try h () with _ -> ()
let g h = try h () with e -> ()
let i h = match h () with x -> x | exception _ -> 0
|}
  in
  check_lines "wildcard and unused-binder handlers flagged" Rule.CQL010 [ 2; 3; 4 ] ds

let cql010_non_hits () =
  let ds =
    lint
      {|
let f h = try h () with Not_found -> 0
let g h log = try h () with e -> log e
let i h = try h () with _ -> raise Exit
let j h = match h () with x -> Ok x | exception Exit -> Error "stopped"
|}
  in
  check_lines "named/used/re-raised handlers are clean" Rule.CQL010 [] ds

let cql010_routed_through_error_channel () =
  let ds =
    lint
      {|
let f h = try Ok (h ()) with _ -> Error "operation failed"
let g h = try h () with _ -> Cq_util.Error.corrupt ~structure:"fixture" "broken"
|}
  in
  check_lines "routing into the typed error channel is clean" Rule.CQL010 [] ds

let cql010_lib_only () =
  let ds = lint ~path:"bin/fixture.ml" "let f h = try h () with _ -> ()" in
  check_lines "binaries may catch-all at the boundary" Rule.CQL010 [] ds

(* ------------------------------------------------------------------ *)
(* Waiver-file edge cases                                               *)
(* ------------------------------------------------------------------ *)

let waiver_duplicates_rejected () =
  let contents = "CQL001 lib/a.ml -- first\nCQL001 lib/a.ml -- second\n" in
  match Waiver.parse ~file:".cqlint" contents with
  | Ok _ -> Alcotest.fail "duplicate waiver must be rejected"
  | Error es -> (
      match es with
      | [ e ] ->
          Alcotest.(check int) "second line blamed" 2 e.source_line;
          Alcotest.(check bool) "mentions duplicate" true (contains ~needle:"duplicate" e.reason);
          Alcotest.(check bool) "points at the first" true (contains ~needle:"line 1" e.reason)
      | _ -> Alcotest.failf "expected one error, got %d" (List.length es))

let waiver_distinct_lines_not_duplicates () =
  let contents = "CQL001 lib/a.ml:3 -- site one\nCQL001 lib/a.ml:9 -- site two\n" in
  match Waiver.parse ~file:".cqlint" contents with
  | Ok ws -> Alcotest.(check int) "both kept" 2 (List.length ws)
  | Error _ -> Alcotest.fail "different lines are different sites"

let waiver_crlf_lines () =
  let contents = "CQL001 lib/a.ml:3 -- dos line endings\r\nCQL002 lib/b.ml -- also crlf\r\n" in
  match Waiver.parse ~file:".cqlint" contents with
  | Error es ->
      Alcotest.failf "CRLF must parse: %s"
        (String.concat "; " (List.map Waiver.error_to_string es))
  | Ok ws -> (
      Alcotest.(check int) "two entries" 2 (List.length ws);
      match ws with
      | [ _; w2 ] ->
          Alcotest.(check string) "no trailing CR in the justification" "also crlf"
            w2.justification
      | _ -> Alcotest.fail "unexpected shape")

let waiver_beyond_cql010_rejected () =
  expect_reject "rule beyond the set" "CQL011 lib/a.ml -- from the future" "CQL001..CQL010";
  expect_reject "way beyond" "CQL042 lib/a.ml -- nope" "unknown rule id"

(* ------------------------------------------------------------------ *)
(* Renderers: schema_version-2 JSON and SARIF 2.1.0                     *)
(* ------------------------------------------------------------------ *)

let report_fixture f =
  with_temp_tree
    [
      ("lib/a.ml", "let f x y = compare x y\nlet g () = failwith \"x\"\n");
      ("lib/a.mli", "val f : 'a -> 'a -> int\nval g : unit -> 'b\n");
      (".cqlint", "CQL002 lib/a.ml -- fixture waiver for the failwith\n");
    ]
    (fun root -> f (Engine.run ~root ()))

let json_schema_v2 () =
  report_fixture (fun report ->
      let json = Render.json_of_report report in
      Alcotest.(check bool) "schema_version 2" true (contains ~needle:"\"schema_version\":2" json);
      Alcotest.(check bool) "rules catalogue present" true (contains ~needle:"\"rules\":[" json);
      Alcotest.(check bool) "all ten rules listed" true (contains ~needle:"CQL010" json))

let sarif_shape () =
  report_fixture (fun report ->
      let sarif = Render.sarif_of_report report in
      List.iter
        (fun needle ->
          Alcotest.(check bool) (Printf.sprintf "contains %s" needle) true
            (contains ~needle sarif))
        [
          "\"version\":\"2.1.0\"";
          "sarif-schema-2.1.0.json";
          "\"driver\":{\"name\":\"cqlint\"";
          "\"ruleId\":\"CQL001\"";
          "physicalLocation";
          "\"startLine\":1";
          (* the rule catalogue is complete even for rules with no hits *)
          "\"id\":\"CQL010\"";
          (* the waived CQL002 finding is suppressed, not dropped *)
          "\"suppressions\":[";
          "fixture waiver for the failwith";
        ])

let sarif_columns_one_based () =
  report_fixture (fun report ->
      let sarif = Render.sarif_of_report report in
      (* Diagnostic cols are 0-based; the CQL001 compare at col 12 must
         render as startColumn 13. *)
      Alcotest.(check bool) "startColumn is 1-based" true
        (contains ~needle:"\"startColumn\":13" sarif))

(* ------------------------------------------------------------------ *)
(* Hot-path manifest                                                    *)
(* ------------------------------------------------------------------ *)

let hot_manifest_lists_annotations () =
  with_temp_tree
    [
      ( "lib/a.ml",
        "let[@cq.hot] fast x = x\nlet slow x = x\nmodule M = struct\n  let[@cq.hot] inner y \
         = y\nend\n" );
      ("lib/a.mli", "val fast : 'a -> 'a\nval slow : 'a -> 'a\nmodule M : sig val inner : 'a -> 'a end\n");
      ("bin/b.ml", "let[@cq.hot] main () = ()\n");
    ]
    (fun root ->
      Alcotest.(check (list string))
        "one path:name line per [@cq.hot] binding, sorted"
        [ "bin/b.ml:main"; "lib/a.ml:fast"; "lib/a.ml:inner" ]
        (Engine.hot_manifest ~root))

(* ------------------------------------------------------------------ *)
(* Meta: the repository itself lints clean                              *)
(* ------------------------------------------------------------------ *)

let find_repo_root () =
  let rec up dir depth =
    if depth > 8 then None
    else if
      Sys.file_exists (Filename.concat dir ".cqlint")
      && Sys.file_exists (Filename.concat dir "dune-project")
      && Sys.file_exists (Filename.concat dir "lib")
    then Some dir
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then None else up parent (depth + 1)
  in
  up (Sys.getcwd ()) 0

let repo_lints_clean () =
  match find_repo_root () with
  | None -> Alcotest.skip ()
  | Some root ->
      let report = Engine.run ~root () in
      List.iter (fun d -> Printf.printf "unexpected: %s\n" (Diagnostic.to_string d)) report.findings;
      List.iter (fun e -> Printf.printf "error: %s\n" e) report.errors;
      Alcotest.(check (list string)) "no unwaived findings"
        [] (List.map Diagnostic.to_string report.findings);
      Alcotest.(check int) "no stale waivers" 0 (List.length report.unused_waivers);
      Alcotest.(check (list string)) "no parse/waiver errors" [] report.errors;
      Alcotest.(check bool) "scanned a real tree" true (List.length report.files > 50)

let repo_waivers_all_justified () =
  (* Belt and braces: every waiver entry in the checked-in .cqlint
     parses with a non-empty justification (the parser enforces it; a
     hand-edited file that breaks this fails here too). *)
  match find_repo_root () with
  | None -> Alcotest.skip ()
  | Some root -> (
      match Waiver.load (Filename.concat root ".cqlint") with
      | Error es ->
          Alcotest.failf "waiver file does not parse: %s"
            (String.concat "; " (List.map Waiver.error_to_string es))
      | Ok ws ->
          Alcotest.(check bool) "has entries" true (List.length ws > 0);
          List.iter
            (fun (w : Waiver.t) ->
              if String.length w.justification < 10 then
                Alcotest.failf "waiver %s: justification too thin" (Waiver.site_to_string w))
            ws)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "cq_lint"
    [
      ( "cql001",
        [
          Alcotest.test_case "hits" `Quick cql001_hits;
          Alcotest.test_case "non-hits" `Quick cql001_non_hits;
          Alcotest.test_case "shadow scoping" `Quick cql001_shadow_scoping;
          Alcotest.test_case "applies to bin/" `Quick cql001_applies_to_bin;
          Alcotest.test_case "span accuracy" `Quick cql001_span_accuracy;
        ] );
      ( "cql002",
        [
          Alcotest.test_case "hits" `Quick cql002_hits;
          Alcotest.test_case "non-hits" `Quick cql002_non_hits;
          Alcotest.test_case "lib-only" `Quick cql002_lib_only;
        ] );
      ( "cql003",
        [
          Alcotest.test_case "hits" `Quick cql003_hits;
          Alcotest.test_case "non-hits" `Quick cql003_non_hits;
          Alcotest.test_case "lib-only" `Quick cql003_lib_only;
        ] );
      ( "cql004",
        [
          Alcotest.test_case "hits" `Quick cql004_hits;
          Alcotest.test_case "everywhere" `Quick cql004_everywhere;
        ] );
      ( "cql005",
        [
          Alcotest.test_case "missing mli" `Quick cql005_missing_mli;
          Alcotest.test_case "waived" `Quick cql005_waived_via_file;
          Alcotest.test_case "stale waiver fails" `Quick stale_waiver_fails;
        ] );
      ( "cql006",
        [
          Alcotest.test_case "hits" `Quick cql006_hits;
          Alcotest.test_case "transitive into spawned fn" `Quick cql006_transitive;
          Alcotest.test_case "mutex-guarded negative" `Quick cql006_mutex_guarded;
          Alcotest.test_case "atomic + handover negative" `Quick cql006_atomic_and_handover;
          Alcotest.test_case "no spawn, no findings" `Quick cql006_no_spawn_no_findings;
        ] );
      ( "cql007",
        [
          Alcotest.test_case "hits" `Quick cql007_hits;
          Alcotest.test_case "scoped to event loop" `Quick cql007_scoped_to_event_loop;
          Alcotest.test_case "blocking_ok on expression" `Quick cql007_blocking_ok_expression;
          Alcotest.test_case "blocking_ok on binding" `Quick cql007_blocking_ok_binding;
          Alcotest.test_case "non-blocking calls clean" `Quick cql007_nonblocking_calls_clean;
        ] );
      ( "cql008",
        [
          Alcotest.test_case "hits" `Quick cql008_hits;
          Alcotest.test_case "transitive callee" `Quick cql008_transitive_callee;
          Alcotest.test_case "partial application" `Quick cql008_partial_application;
          Alcotest.test_case "cold cut" `Quick cql008_cold_cut;
          Alcotest.test_case "non-hot clean" `Quick cql008_non_hot_clean;
          Alcotest.test_case "result/raise exempt" `Quick cql008_result_and_raise_exempt;
          Alcotest.test_case "gated + loops clean" `Quick cql008_gated_and_loops_clean;
        ] );
      ( "cql009",
        [
          Alcotest.test_case "hits" `Quick cql009_hits;
          Alcotest.test_case "hot is legal" `Quick cql009_hot_is_legal;
          Alcotest.test_case "transitively hot is legal" `Quick cql009_transitively_hot_is_legal;
          Alcotest.test_case "checked access clean" `Quick cql009_checked_access_clean;
        ] );
      ( "cql010",
        [
          Alcotest.test_case "hits" `Quick cql010_hits;
          Alcotest.test_case "non-hits" `Quick cql010_non_hits;
          Alcotest.test_case "error-channel routing" `Quick cql010_routed_through_error_channel;
          Alcotest.test_case "lib-only" `Quick cql010_lib_only;
        ] );
      ( "waivers",
        [
          Alcotest.test_case "good lines" `Quick waiver_parse_good;
          Alcotest.test_case "bad lines rejected" `Quick waiver_parse_bad;
          Alcotest.test_case "all bad lines reported" `Quick waiver_parse_reports_all_bad_lines;
          Alcotest.test_case "coverage matching" `Quick waiver_covers;
          Alcotest.test_case "syntax errors reported" `Quick syntax_error_is_reported;
          Alcotest.test_case "duplicates rejected" `Quick waiver_duplicates_rejected;
          Alcotest.test_case "distinct lines kept" `Quick waiver_distinct_lines_not_duplicates;
          Alcotest.test_case "crlf lines" `Quick waiver_crlf_lines;
          Alcotest.test_case "beyond CQL010 rejected" `Quick waiver_beyond_cql010_rejected;
        ] );
      ( "render",
        [
          Alcotest.test_case "json schema v2" `Quick json_schema_v2;
          Alcotest.test_case "sarif shape" `Quick sarif_shape;
          Alcotest.test_case "sarif 1-based columns" `Quick sarif_columns_one_based;
        ] );
      ( "manifest",
        [ Alcotest.test_case "hot manifest" `Quick hot_manifest_lists_annotations ] );
      ( "meta",
        [
          Alcotest.test_case "repo lints clean" `Quick repo_lints_clean;
          Alcotest.test_case "waivers justified" `Quick repo_waivers_all_justified;
        ] );
    ]
