(* Self-test harness for cqlint: fixture snippets asserting each
   rule's hits AND non-hits, waiver-file parsing (bad lines rejected
   with a usable error), waiver application, and a meta-test that the
   analyzer runs clean on this repository itself. *)

open Cq_lint

(* ------------------------------------------------------------------ *)
(* Fixture helpers                                                      *)
(* ------------------------------------------------------------------ *)

let lint ?(path = "lib/fixture.ml") src =
  match Engine.lint_source ~path src with
  | Ok ds -> ds
  | Error e -> Alcotest.failf "fixture failed to parse: %s" e

let lines_of rule ds =
  List.filter_map
    (fun (d : Diagnostic.t) -> if Rule.equal d.rule rule then Some d.line else None)
    ds

let check_lines what rule expected ds =
  Alcotest.(check (list int)) what expected (lines_of rule ds)

(* ------------------------------------------------------------------ *)
(* CQL001 no-polymorphic-compare                                        *)
(* ------------------------------------------------------------------ *)

let cql001_hits () =
  let ds =
    lint
      {|
let f xs = List.sort compare xs
let g x y = compare x y
let h x = x = None
let i xs = xs <> []
let j x = min 0.0 x
let k x = Hashtbl.hash x
let l s = s = "literal"
let m x xs = List.mem (Some x) xs
|}
  in
  check_lines "one hit per corrupted line" Rule.CQL001 [ 2; 3; 4; 5; 6; 7; 8; 9 ] ds

let cql001_non_hits () =
  let ds =
    lint
      {|
let f xs = List.sort Int.compare xs
let compare a b = Float.compare a b
let g xs = List.sort compare xs
let h x = match x with None -> true | Some _ -> false
let i n m = min n m
let j x = x = 3
let k c = c = 'x'
module M = struct
  let compare = Int.compare
  let sorted xs = List.sort compare xs
end
let l xs = List.sort M.compare xs
type r = { next : int option }
let m () = { next = None }
|}
  in
  check_lines "monomorphic/shadowed/immediate uses are clean" Rule.CQL001 [] ds

let cql001_shadow_scoping () =
  (* A local [compare] binding suppresses the rule only inside its
     scope — the module-level use after it must still be flagged. *)
  let ds =
    lint
      {|
let f xs =
  let compare a b = Int.compare a b in
  List.sort compare xs
let g xs = List.sort compare xs
|}
  in
  check_lines "shadow does not leak out of its scope" Rule.CQL001 [ 5 ] ds

let cql001_applies_to_bin () =
  let ds = lint ~path:"bin/fixture.ml" "let f x y = compare x y" in
  check_lines "CQL001 also covers bin/" Rule.CQL001 [ 1 ] ds

let cql001_span_accuracy () =
  let ds = lint "let f xs = List.sort compare xs" in
  match ds with
  | [ d ] ->
      Alcotest.(check int) "line" 1 d.line;
      Alcotest.(check int) "start col points at the compare ident" 21 d.col;
      Alcotest.(check int) "end col" 28 d.end_col
  | _ -> Alcotest.failf "expected exactly one finding, got %d" (List.length ds)

(* ------------------------------------------------------------------ *)
(* CQL002 error-discipline                                              *)
(* ------------------------------------------------------------------ *)

let cql002_hits () =
  let ds =
    lint
      {|
let f () = failwith "boom"
let g x = if x < 0 then invalid_arg "g: negative"
let h () = raise (Failure "bad")
let i fmt = Printf.ksprintf failwith fmt
|}
  in
  check_lines "failwith/invalid_arg/Failure all flagged" Rule.CQL002 [ 2; 3; 4; 5 ] ds

let cql002_non_hits () =
  let ds =
    lint
      {|
let f () = Cq_util.Error.corrupt ~structure:"fixture" "broken: %d" 3
let g () = try () with Failure _ -> ()
let h e = match e with Invalid_argument m -> m | _ -> ""
|}
  in
  check_lines "typed raises and handler patterns are clean" Rule.CQL002 [] ds

let cql002_lib_only () =
  let ds = lint ~path:"bin/fixture.ml" {|let f () = failwith "cli code may die"|} in
  check_lines "CQL002 does not apply to bin/" Rule.CQL002 [] ds

(* ------------------------------------------------------------------ *)
(* CQL003 global-mutable-state                                          *)
(* ------------------------------------------------------------------ *)

let cql003_hits () =
  let ds =
    lint
      {|
let table = Hashtbl.create 16
let switch = ref false
let buf = Buffer.create 80
module M = struct
  let inner = ref 0
end
|}
  in
  check_lines "module-level mutable allocations flagged" Rule.CQL003 [ 2; 3; 4; 6 ] ds

let cql003_non_hits () =
  let ds =
    lint
      {|
let make () = ref 0
let f () =
  let r = ref 0 in
  incr r;
  !r
module Make (X : sig end) = struct
  let state = ref 0
end
let pure = 42
|}
  in
  check_lines "constructor-local and functor state are clean" Rule.CQL003 [] ds

let cql003_lib_only () =
  let ds = lint ~path:"bin/fixture.ml" "let cache = Hashtbl.create 16" in
  check_lines "CQL003 does not apply to bin/" Rule.CQL003 [] ds

(* ------------------------------------------------------------------ *)
(* CQL004 obj-magic-ban                                                 *)
(* ------------------------------------------------------------------ *)

let cql004_hits () =
  let ds =
    lint {|
let f x = Obj.magic x
let g x = Obj.repr x
|}
  in
  check_lines "Obj.magic and Obj.repr flagged" Rule.CQL004 [ 2; 3 ] ds

let cql004_everywhere () =
  let ds = lint ~path:"bin/fixture.ml" "let f x = Obj.magic x" in
  check_lines "CQL004 covers bin/ too" Rule.CQL004 [ 1 ] ds

(* ------------------------------------------------------------------ *)
(* CQL005 mli-coverage (needs a real directory tree)                    *)
(* ------------------------------------------------------------------ *)

let with_temp_tree files f =
  (* temp_file gives us a unique path; reuse the name as a directory. *)
  let root = Filename.temp_file "cqlint_test" ".d" in
  Sys.remove root;
  let rec mkdirs d =
    if not (Sys.file_exists d) then begin
      mkdirs (Filename.dirname d);
      Sys.mkdir d 0o755
    end
  in
  List.iter
    (fun (rel, contents) ->
      let full = Filename.concat root rel in
      mkdirs (Filename.dirname full);
      Out_channel.with_open_bin full (fun oc -> Out_channel.output_string oc contents))
    files;
  Fun.protect
    ~finally:(fun () ->
      let rec rm d =
        if Sys.is_directory d then begin
          Array.iter (fun n -> rm (Filename.concat d n)) (Sys.readdir d);
          Sys.rmdir d
        end
        else Sys.remove d
      in
      if Sys.file_exists root then rm root)
    (fun () -> f root)

let cql005_missing_mli () =
  with_temp_tree
    [ ("lib/a.ml", "let x = 1\n"); ("lib/b.ml", "let y = 2\n"); ("lib/b.mli", "val y : int\n") ]
    (fun root ->
      let report = Engine.run ~root () in
      Alcotest.(check (list string)) "a.ml lacks an interface" [ "lib/a.ml" ]
        (List.filter_map
           (fun (d : Diagnostic.t) ->
             if Rule.equal d.rule Rule.CQL005 then Some d.path else None)
           report.findings))

let cql005_waived_via_file () =
  with_temp_tree
    [
      ("lib/a.ml", "let x = 1\n");
      (".cqlint", "CQL005 lib/a.ml -- intf-only module pattern, fixture\n");
    ]
    (fun root ->
      let report = Engine.run ~root () in
      Alcotest.(check bool) "clean with waiver" true (Engine.clean report);
      Alcotest.(check int) "one waived" 1 (List.length report.waived))

let stale_waiver_fails () =
  with_temp_tree
    [
      ("lib/a.ml", "let x = 1\n");
      ("lib/a.mli", "val x : int\n");
      (".cqlint", "CQL005 lib/a.ml -- no longer true: the mli exists now\n");
    ]
    (fun root ->
      let report = Engine.run ~root () in
      Alcotest.(check bool) "stale waiver breaks cleanliness" false (Engine.clean report);
      Alcotest.(check int) "reported as unused" 1 (List.length report.unused_waivers))

(* ------------------------------------------------------------------ *)
(* Waiver parsing                                                       *)
(* ------------------------------------------------------------------ *)

let parse_one s =
  match Waiver.parse_line ~file:".cqlint" ~source_line:1 s with
  | Ok v -> Ok v
  | Error e -> Error e.reason

let waiver_parse_good () =
  (match parse_one "CQL001 lib/x.ml:12 -- floats compared polymorphically" with
  | Ok (Some w) ->
      Alcotest.(check string) "path" "lib/x.ml" w.path;
      Alcotest.(check (option int)) "line" (Some 12) w.line;
      Alcotest.(check string) "justification" "floats compared polymorphically" w.justification
  | _ -> Alcotest.fail "line-pinned waiver should parse");
  (match parse_one "cql002 ./lib/y.ml -- guards (lowercase id, ./ prefix ok)" with
  | Ok (Some w) ->
      Alcotest.(check string) "normalized path" "lib/y.ml" w.path;
      Alcotest.(check (option int)) "file-level" None w.line
  | _ -> Alcotest.fail "file-level waiver should parse");
  (match parse_one "# just a comment" with
  | Ok None -> ()
  | _ -> Alcotest.fail "comments are skipped");
  match parse_one "   " with
  | Ok None -> ()
  | _ -> Alcotest.fail "blank lines are skipped"

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.equal (String.sub hay i n) needle || go (i + 1)) in
  n = 0 || go 0

let expect_reject what s fragment =
  match parse_one s with
  | Ok _ -> Alcotest.failf "%s: %S should have been rejected" what s
  | Error reason ->
      if not (contains ~needle:fragment reason) then
        Alcotest.failf "%s: error %S does not mention %S" what reason fragment

let waiver_parse_bad () =
  expect_reject "unknown rule" "CQL999 lib/x.ml -- nope" "unknown rule";
  expect_reject "missing justification" "CQL001 lib/x.ml" "justification";
  expect_reject "empty justification" "CQL001 lib/x.ml -- " "justification";
  expect_reject "zero line" "CQL001 lib/x.ml:0 -- reason" "1-based";
  expect_reject "bad line suffix" "CQL001 lib/x.ml: -- reason" "empty line number";
  expect_reject "no site" "CQL001 -- reason" "missing path"

let waiver_parse_reports_all_bad_lines () =
  let contents = "CQL001 lib/a.ml -- fine\nCQL999 b.ml -- bad\nCQL001 nope\n" in
  match Waiver.parse ~file:".cqlint" contents with
  | Ok _ -> Alcotest.fail "expected errors"
  | Error es ->
      Alcotest.(check (list int)) "both bad lines reported, 1-based" [ 2; 3 ]
        (List.map (fun (e : Waiver.parse_error) -> e.source_line) es)

let waiver_covers () =
  let d =
    match lint "let f xs = List.sort compare xs" with
    | [ d ] -> d
    | ds -> Alcotest.failf "expected one finding, got %d" (List.length ds)
  in
  let w line =
    { Waiver.rule = Rule.CQL001; path = "lib/fixture.ml"; line; justification = "j"; source_line = 1 }
  in
  Alcotest.(check bool) "file-level covers" true (Waiver.covers (w None) d);
  Alcotest.(check bool) "matching line covers" true (Waiver.covers (w (Some 1)) d);
  Alcotest.(check bool) "other line does not" false (Waiver.covers (w (Some 9)) d);
  Alcotest.(check bool) "other rule does not" false
    (Waiver.covers { (w None) with rule = Rule.CQL004 } d)

let syntax_error_is_reported () =
  match Engine.lint_source ~path:"lib/broken.ml" "let let = in" with
  | Error msg -> Alcotest.(check bool) "mentions the path" true (contains ~needle:"broken.ml" msg)
  | Ok _ -> Alcotest.fail "unparsable source must not lint clean"

(* ------------------------------------------------------------------ *)
(* Meta: the repository itself lints clean                              *)
(* ------------------------------------------------------------------ *)

let find_repo_root () =
  let rec up dir depth =
    if depth > 8 then None
    else if
      Sys.file_exists (Filename.concat dir ".cqlint")
      && Sys.file_exists (Filename.concat dir "dune-project")
      && Sys.file_exists (Filename.concat dir "lib")
    then Some dir
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then None else up parent (depth + 1)
  in
  up (Sys.getcwd ()) 0

let repo_lints_clean () =
  match find_repo_root () with
  | None -> Alcotest.skip ()
  | Some root ->
      let report = Engine.run ~root () in
      List.iter (fun d -> Printf.printf "unexpected: %s\n" (Diagnostic.to_string d)) report.findings;
      List.iter (fun e -> Printf.printf "error: %s\n" e) report.errors;
      Alcotest.(check (list string)) "no unwaived findings"
        [] (List.map Diagnostic.to_string report.findings);
      Alcotest.(check int) "no stale waivers" 0 (List.length report.unused_waivers);
      Alcotest.(check (list string)) "no parse/waiver errors" [] report.errors;
      Alcotest.(check bool) "scanned a real tree" true (List.length report.files > 50)

let repo_waivers_all_justified () =
  (* Belt and braces: every waiver entry in the checked-in .cqlint
     parses with a non-empty justification (the parser enforces it; a
     hand-edited file that breaks this fails here too). *)
  match find_repo_root () with
  | None -> Alcotest.skip ()
  | Some root -> (
      match Waiver.load (Filename.concat root ".cqlint") with
      | Error es ->
          Alcotest.failf "waiver file does not parse: %s"
            (String.concat "; " (List.map Waiver.error_to_string es))
      | Ok ws ->
          Alcotest.(check bool) "has entries" true (List.length ws > 0);
          List.iter
            (fun (w : Waiver.t) ->
              if String.length w.justification < 10 then
                Alcotest.failf "waiver %s: justification too thin" (Waiver.site_to_string w))
            ws)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "cq_lint"
    [
      ( "cql001",
        [
          Alcotest.test_case "hits" `Quick cql001_hits;
          Alcotest.test_case "non-hits" `Quick cql001_non_hits;
          Alcotest.test_case "shadow scoping" `Quick cql001_shadow_scoping;
          Alcotest.test_case "applies to bin/" `Quick cql001_applies_to_bin;
          Alcotest.test_case "span accuracy" `Quick cql001_span_accuracy;
        ] );
      ( "cql002",
        [
          Alcotest.test_case "hits" `Quick cql002_hits;
          Alcotest.test_case "non-hits" `Quick cql002_non_hits;
          Alcotest.test_case "lib-only" `Quick cql002_lib_only;
        ] );
      ( "cql003",
        [
          Alcotest.test_case "hits" `Quick cql003_hits;
          Alcotest.test_case "non-hits" `Quick cql003_non_hits;
          Alcotest.test_case "lib-only" `Quick cql003_lib_only;
        ] );
      ( "cql004",
        [
          Alcotest.test_case "hits" `Quick cql004_hits;
          Alcotest.test_case "everywhere" `Quick cql004_everywhere;
        ] );
      ( "cql005",
        [
          Alcotest.test_case "missing mli" `Quick cql005_missing_mli;
          Alcotest.test_case "waived" `Quick cql005_waived_via_file;
          Alcotest.test_case "stale waiver fails" `Quick stale_waiver_fails;
        ] );
      ( "waivers",
        [
          Alcotest.test_case "good lines" `Quick waiver_parse_good;
          Alcotest.test_case "bad lines rejected" `Quick waiver_parse_bad;
          Alcotest.test_case "all bad lines reported" `Quick waiver_parse_reports_all_bad_lines;
          Alcotest.test_case "coverage matching" `Quick waiver_covers;
          Alcotest.test_case "syntax errors reported" `Quick syntax_error_is_reported;
        ] );
      ( "meta",
        [
          Alcotest.test_case "repo lints clean" `Quick repo_lints_clean;
          Alcotest.test_case "waivers justified" `Quick repo_waivers_all_justified;
        ] );
    ]
