(* Model-based tests for the index substrate: B+-tree vs a sorted-list
   model, interval tree vs brute force, treap split/join algebra,
   R-tree vs brute force. *)

module I = Cq_interval.Interval
module Btree = Cq_index.Btree
module Itree = Cq_index.Interval_tree
module Rect = Cq_index.Rect
module Rtree = Cq_index.Rtree
module Rng = Cq_util.Rng

module FB = Btree.Make (struct
  type t = float

  let compare = Float.compare
  let compare_at (a : float array) i k = Float.compare (Array.unsafe_get a i) k
end)

(* Values come from a small grid so duplicates are common — the hard
   case for ordered-index seek semantics. *)
let key_gen = QCheck2.Gen.(map (fun i -> float_of_int i /. 2.0) (int_bound 40))

type op = Ins of float | Del of float

let op_gen =
  QCheck2.Gen.(
    oneof [ map (fun k -> Ins k) key_gen; map (fun k -> Del k) key_gen ])

let ops_gen = QCheck2.Gen.(list_size (int_range 0 400) op_gen)

(* Reference model: a sorted list of (key, value); duplicates kept in
   insertion order among equals (the B-tree appends equal keys to the
   right and deletes the leftmost match, so values with equal keys form
   a FIFO). *)
module Model = struct
  type t = (float * int) list

  let insert (m : t) k v =
    let rec go = function
      | [] -> [ (k, v) ]
      | (k', v') :: rest when k' <= k -> (k', v') :: go rest
      | rest -> (k, v) :: rest
    in
    go m

  let remove_first (m : t) k pred =
    let rec go = function
      | [] -> None
      | (k', v') :: rest when k' = k && pred v' -> Some rest
      | x :: rest -> Option.map (fun r -> x :: r) (go rest)
    in
    go m

  let seek_ge (m : t) k = List.find_opt (fun (k', _) -> k' >= k) m
  let seek_le (m : t) k = List.fold_left (fun acc (k', v) -> if k' <= k then Some (k', v) else acc) None m
end

let apply_ops ops =
  let t = FB.create ~order:2 () in
  let model = ref [] in
  let fresh = ref 0 in
  List.iter
    (fun op ->
      match op with
      | Ins k ->
          incr fresh;
          FB.insert t k !fresh;
          model := Model.insert !model k !fresh
      | Del k -> (
          let removed = FB.remove_first t k (fun _ -> true) in
          match Model.remove_first !model k (fun _ -> true) with
          | Some m ->
              if not removed then QCheck2.Test.fail_report "model removed but tree did not";
              model := m
          | None -> if removed then QCheck2.Test.fail_report "tree removed but model did not"))
    ops;
  (t, !model)

let prop_btree_models_sorted_list =
  QCheck2.Test.make ~name:"btree: to_list matches model" ~count:300 ops_gen (fun ops ->
      let t, model = apply_ops ops in
      FB.check_invariants t;
      FB.to_list t = model)

let prop_btree_seeks =
  QCheck2.Test.make ~name:"btree: seek_ge/seek_le match model" ~count:200
    QCheck2.Gen.(pair ops_gen (list_size (int_range 1 30) key_gen))
    (fun (ops, probes) ->
      let t, model = apply_ops ops in
      List.for_all
        (fun k ->
          let ge = Option.map (fun c -> (FB.key c, FB.value c)) (FB.seek_ge t k) in
          let le = Option.map (fun c -> (FB.key c, FB.value c)) (FB.seek_le t k) in
          (* seek_ge must agree on the key; among equal keys it must be
             the leftmost, which the model's find_opt also returns. *)
          ge = Model.seek_ge model k && le = Model.seek_le model k)
        probes)

let prop_btree_range =
  QCheck2.Test.make ~name:"btree: iter_range matches model filter" ~count:200
    QCheck2.Gen.(triple ops_gen key_gen key_gen)
    (fun (ops, a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      let t, model = apply_ops ops in
      let got = ref [] in
      FB.iter_range t ~lo ~hi (fun k v -> got := (k, v) :: !got);
      List.rev !got = List.filter (fun (k, _) -> k >= lo && k <= hi) model)

let prop_btree_bulk_load =
  QCheck2.Test.make ~name:"btree: of_sorted valid and faithful" ~count:200
    QCheck2.Gen.(list_size (int_range 0 600) key_gen)
    (fun keys ->
      let sorted = List.sort compare keys in
      let entries = Array.of_list (List.mapi (fun i k -> (k, i)) sorted) in
      (* Re-sort stably by key only (values keep relative order). *)
      let t = FB.of_sorted ~order:3 entries in
      FB.check_invariants t;
      List.map fst (FB.to_list t) = sorted)

let prop_btree_cursor_walk =
  QCheck2.Test.make ~name:"btree: cursor walks forward and back" ~count:200 ops_gen (fun ops ->
      let t, model = apply_ops ops in
      (* Forward from the smallest key. *)
      let forward =
        match model with
        | [] -> []
        | (k0, _) :: _ ->
            let rec walk acc = function
              | None -> List.rev acc
              | Some c -> walk ((FB.key c, FB.value c) :: acc) (FB.next c)
            in
            walk [] (FB.seek_ge t k0)
      in
      let backward =
        match FB.max_entry t with
        | None -> []
        | Some (kmax, _) ->
            let rec walk acc = function
              | None -> acc
              | Some c -> walk ((FB.key c, FB.value c) :: acc) (FB.prev c)
            in
            walk [] (FB.seek_le t kmax)
      in
      forward = model && backward = model)

let prop_btree_walks =
  QCheck2.Test.make ~name:"btree: walk_ge/walk_lt match model splits" ~count:200
    QCheck2.Gen.(pair ops_gen (list_size (int_range 1 20) key_gen))
    (fun (ops, probes) ->
      let t, model = apply_ops ops in
      List.for_all
        (fun k ->
          (* Unbounded walks must reproduce the model split at k. *)
          let asc = ref [] in
          FB.walk_ge t k (fun k' v ->
              asc := (k', v) :: !asc;
              true);
          let desc = ref [] in
          FB.walk_lt t k (fun k' v ->
              desc := (k', v) :: !desc;
              true);
          let ge_model = List.filter (fun (k', _) -> k' >= k) model in
          let lt_model = List.filter (fun (k', _) -> k' < k) model in
          List.rev !asc = ge_model && !desc = lt_model)
        probes)

let test_btree_walk_early_stop () =
  let t = FB.create ~order:2 () in
  List.iter (fun k -> FB.insert t k (int_of_float k)) [ 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 ];
  let seen = ref 0 in
  FB.walk_ge t 2.0 (fun k _ ->
      incr seen;
      k < 4.0);
  (* Visits 2, 3, then 4 (which stops the walk). *)
  Alcotest.(check int) "bounded ascending" 3 !seen;
  let seen = ref 0 in
  FB.walk_lt t 5.0 (fun k _ ->
      incr seen;
      k > 2.0);
  (* Visits 4, 3, then 2 (which stops the walk). *)
  Alcotest.(check int) "bounded descending" 3 !seen

let test_btree_neighbours () =
  let t = FB.create ~order:2 () in
  List.iter (fun k -> FB.insert t k (int_of_float k)) [ 1.0; 3.0; 5.0; 7.0 ];
  let le, ge = FB.neighbours t 4.0 in
  Alcotest.(check (option (pair (float 0.0) int))) "le" (Some (3.0, 3)) le;
  Alcotest.(check (option (pair (float 0.0) int))) "ge" (Some (5.0, 5)) ge;
  let le, ge = FB.neighbours t 5.0 in
  Alcotest.(check (option (pair (float 0.0) int))) "le exact" (Some (5.0, 5)) le;
  Alcotest.(check (option (pair (float 0.0) int))) "ge exact" (Some (5.0, 5)) ge;
  let le, ge = FB.neighbours t 0.0 in
  Alcotest.(check (option (pair (float 0.0) int))) "le below min" None le;
  Alcotest.(check (option (pair (float 0.0) int))) "ge below min" (Some (1.0, 1)) ge

let test_btree_find_all_duplicates () =
  let t = FB.create ~order:2 () in
  for i = 1 to 20 do
    FB.insert t 5.0 i;
    FB.insert t (100.0 +. float_of_int i) (-i)
  done;
  Alcotest.(check (list int)) "duplicates in order" (List.init 20 (fun i -> i + 1))
    (FB.find_all t 5.0);
  Alcotest.(check int) "count_range" 20 (FB.count_range t ~lo:5.0 ~hi:5.0)

let test_btree_empty () =
  let t : int FB.t = FB.create () in
  Alcotest.(check bool) "is_empty" true (FB.is_empty t);
  Alcotest.(check bool) "seek on empty" true (FB.seek_ge t 1.0 = None);
  Alcotest.(check bool) "remove on empty" false (FB.remove_first t 1.0 (fun _ -> true));
  FB.check_invariants t

(* --------------------------- Interval tree ---------------------------- *)

let interval_gen =
  QCheck2.Gen.(
    map2
      (fun a b -> if a <= b then I.make a b else I.make b a)
      (map float_of_int (int_bound 100))
      (map float_of_int (int_bound 100)))

let prop_itree_stab_matches_brute =
  QCheck2.Test.make ~name:"interval tree: stab = brute force" ~count:300
    QCheck2.Gen.(pair (list_size (int_range 0 200) interval_gen) (list_size (int_range 1 20) (map float_of_int (int_bound 100))))
    (fun (ivs, probes) ->
      let t = List.fold_left (fun acc (i, iv) -> Itree.add iv i acc) Itree.empty
          (List.mapi (fun i iv -> (i, iv)) ivs)
      in
      Itree.check_invariants t;
      List.for_all
        (fun x ->
          let got = List.sort compare (List.map snd (Itree.stab_list t x)) in
          let want =
            List.sort compare
              (List.filteri (fun _ _ -> true) (List.mapi (fun i iv -> (i, iv)) ivs)
              |> List.filter (fun (_, iv) -> I.stabs iv x)
              |> List.map fst)
          in
          got = want)
        probes)

let prop_itree_remove =
  QCheck2.Test.make ~name:"interval tree: add/remove round trip" ~count:300
    QCheck2.Gen.(list_size (int_range 0 150) interval_gen)
    (fun ivs ->
      let indexed = List.mapi (fun i iv -> (i, iv)) ivs in
      let t = List.fold_left (fun acc (i, iv) -> Itree.add iv i acc) Itree.empty indexed in
      (* Remove every other element; survivors must be exactly the rest. *)
      let t =
        List.fold_left
          (fun acc (i, iv) ->
            if i mod 2 = 0 then
              match Itree.remove iv (fun p -> p = i) acc with
              | Some acc' -> acc'
              | None -> QCheck2.Test.fail_report "expected removal to succeed"
            else acc)
          t indexed
      in
      Itree.check_invariants t;
      let survivors = List.sort compare (List.map snd (Itree.to_list t)) in
      survivors = List.sort compare (List.filter (fun i -> i mod 2 = 1) (List.map fst indexed)))

let prop_itree_query_overlaps =
  QCheck2.Test.make ~name:"interval tree: window query = brute force" ~count:200
    QCheck2.Gen.(pair (list_size (int_range 0 150) interval_gen) interval_gen)
    (fun (ivs, w) ->
      let indexed = List.mapi (fun i iv -> (i, iv)) ivs in
      let t = List.fold_left (fun acc (i, iv) -> Itree.add iv i acc) Itree.empty indexed in
      let got = ref [] in
      Itree.query t w (fun _ p -> got := p :: !got);
      List.sort compare !got
      = List.sort compare (List.map fst (List.filter (fun (_, iv) -> I.overlaps iv w) indexed)))

let test_itree_remove_missing () =
  let t = Itree.add (I.make 0.0 1.0) 0 Itree.empty in
  Alcotest.(check bool) "absent interval" true (Itree.remove (I.make 5.0 6.0) (fun _ -> true) t = None);
  Alcotest.(check bool) "wrong payload" true (Itree.remove (I.make 0.0 1.0) (fun p -> p = 9) t = None)

let test_itree_mutable_facade () =
  let m = Itree.Mutable.create () in
  Itree.Mutable.add m (I.make 0.0 10.0) "a";
  Itree.Mutable.add m (I.make 5.0 15.0) "b";
  Alcotest.(check int) "stab count" 2 (Itree.Mutable.stab_count m 7.0);
  Alcotest.(check bool) "remove" true (Itree.Mutable.remove m (I.make 0.0 10.0) (fun _ -> true));
  Alcotest.(check int) "size after" 1 (Itree.Mutable.size m)

(* ------------------------------- Treap -------------------------------- *)

module TE = struct
  type t = { iv : I.t; id : int }

  let compare a b =
    let c = Float.compare (I.lo a.iv) (I.lo b.iv) in
    if c <> 0 then c
    else
      let c = Float.compare (I.hi a.iv) (I.hi b.iv) in
      if c <> 0 then c else Int.compare a.id b.id

  let interval e = e.iv
end

module T = Cq_index.Treap.Make (TE)

let treap_elems_gen =
  QCheck2.Gen.(list_size (int_range 0 200) interval_gen)

let build_treap ivs =
  let rng = Rng.create 99 in
  T.of_list rng (List.mapi (fun i iv -> { TE.iv; id = i }) ivs)

let prop_treap_sorted =
  QCheck2.Test.make ~name:"treap: to_list sorted, isect exact" ~count:300 treap_elems_gen
    (fun ivs ->
      let t = build_treap ivs in
      T.check_invariants t;
      let l = T.to_list t in
      let sorted = List.sort TE.compare l in
      let want_isect =
        List.fold_left (fun acc e -> I.inter acc (TE.interval e)) (I.make neg_infinity infinity) l
      in
      l = sorted && List.length l = List.length ivs && I.equal (T.isect t) want_isect)

let prop_treap_split_join =
  QCheck2.Test.make ~name:"treap: split_lo_le then join is identity" ~count:300
    QCheck2.Gen.(pair treap_elems_gen (map float_of_int (int_bound 100)))
    (fun (ivs, x) ->
      let t = build_treap ivs in
      let l, r = T.split_lo_le x t in
      T.check_invariants l;
      T.check_invariants r;
      let ok_l = List.for_all (fun e -> I.lo (TE.interval e) <= x) (T.to_list l) in
      let ok_r = List.for_all (fun e -> I.lo (TE.interval e) > x) (T.to_list r) in
      let j = T.join l r in
      T.check_invariants j;
      ok_l && ok_r && T.to_list j = T.to_list t)

let prop_treap_remove =
  QCheck2.Test.make ~name:"treap: remove each element once" ~count:200 treap_elems_gen
    (fun ivs ->
      let elems = List.mapi (fun i iv -> { TE.iv; id = i }) ivs in
      let t = build_treap ivs in
      let t =
        List.fold_left
          (fun acc e ->
            match T.remove e acc with
            | Some acc' -> acc'
            | None -> QCheck2.Test.fail_report "element should be present")
          t
          (List.filteri (fun i _ -> i mod 3 = 0) elems)
      in
      T.check_invariants t;
      T.size t = List.length (List.filteri (fun i _ -> i mod 3 <> 0) elems))

(* ------------------------------- R-tree ------------------------------- *)

let rect_gen =
  QCheck2.Gen.(
    map2 (fun x y -> Rect.make ~x ~y)
      (map2 (fun a b -> if a <= b then I.make a b else I.make b a)
         (map float_of_int (int_bound 50))
         (map float_of_int (int_bound 50)))
      (map2 (fun a b -> if a <= b then I.make a b else I.make b a)
         (map float_of_int (int_bound 50))
         (map float_of_int (int_bound 50))))

let prop_rtree_stab =
  QCheck2.Test.make ~name:"rtree: point stab = brute force" ~count:200
    QCheck2.Gen.(pair (list_size (int_range 0 150) rect_gen)
                    (list_size (int_range 1 15) (pair (map float_of_int (int_bound 50)) (map float_of_int (int_bound 50)))))
    (fun (rects, probes) ->
      let t = Rtree.create ~max_entries:4 () in
      List.iteri (fun i r -> Rtree.insert t r i) rects;
      Rtree.check_invariants t;
      List.for_all
        (fun (x, y) ->
          let got = ref [] in
          Rtree.stab t ~x ~y (fun _ p -> got := p :: !got);
          let want =
            List.filteri (fun _ _ -> true) (List.mapi (fun i r -> (i, r)) rects)
            |> List.filter (fun (_, r) -> Rect.contains_point r ~x ~y)
            |> List.map fst
          in
          List.sort compare !got = List.sort compare want)
        probes)

let prop_rtree_search =
  QCheck2.Test.make ~name:"rtree: window search = brute force" ~count:200
    QCheck2.Gen.(pair (list_size (int_range 0 150) rect_gen) rect_gen)
    (fun (rects, w) ->
      let t = Rtree.create ~max_entries:5 () in
      List.iteri (fun i r -> Rtree.insert t r i) rects;
      let got = ref [] in
      Rtree.search t w (fun _ p -> got := p :: !got);
      let want = List.mapi (fun i r -> (i, r)) rects
                 |> List.filter (fun (_, r) -> Rect.intersects r w)
                 |> List.map fst in
      List.sort compare !got = List.sort compare want)

let prop_rtree_delete =
  QCheck2.Test.make ~name:"rtree: delete half, survivors intact" ~count:150
    QCheck2.Gen.(list_size (int_range 0 120) rect_gen)
    (fun rects ->
      let t = Rtree.create ~max_entries:4 () in
      List.iteri (fun i r -> Rtree.insert t r i) rects;
      List.iteri
        (fun i r ->
          if i mod 2 = 0 then
            if not (Rtree.remove t r (fun p -> p = i)) then
              QCheck2.Test.fail_report "expected delete to succeed")
        rects;
      Rtree.check_invariants t;
      let got = ref [] in
      Rtree.iter t (fun _ p -> got := p :: !got);
      let want = List.mapi (fun i _ -> i) rects |> List.filter (fun i -> i mod 2 = 1) in
      List.sort compare !got = List.sort compare want)

let test_rtree_empty_rect_rejected () =
  let t = Rtree.create () in
  Alcotest.check_raises "empty rect" (Invalid_argument "Rtree.insert: empty rectangle")
    (fun () -> Rtree.insert t Rect.empty 0)


(* --------------------------- Interval skip list ----------------------- *)

module Isl = Cq_index.Interval_skiplist

let prop_isl_stab_matches_brute =
  QCheck2.Test.make ~name:"skip list: stab = brute force" ~count:300
    QCheck2.Gen.(pair (list_size (int_range 0 150) interval_gen)
                    (list_size (int_range 1 20) (map float_of_int (int_bound 100))))
    (fun (ivs, probes) ->
      let t = Isl.create ~seed:5 () in
      List.iteri (fun i iv -> Isl.add t iv i) ivs;
      Isl.check_invariants t;
      let probes =
        probes @ List.concat_map (fun iv -> [ I.lo iv; I.hi iv ]) ivs
      in
      List.for_all
        (fun x ->
          let got = List.sort compare (List.map snd (Isl.stab_list t x)) in
          let want =
            List.mapi (fun i iv -> (i, iv)) ivs
            |> List.filter (fun (_, iv) -> I.stabs iv x)
            |> List.map fst |> List.sort compare
          in
          got = want)
        probes)

let prop_isl_matches_interval_tree_under_churn =
  QCheck2.Test.make ~name:"skip list: agrees with interval tree under churn" ~count:200
    QCheck2.Gen.(list_size (int_range 1 200)
                   (pair (frequencyl [ (3, true); (2, false) ]) interval_gen))
    (fun ops ->
      let sl = Isl.create ~seed:9 () in
      let it = Itree.Mutable.create () in
      let live = ref [] in
      let next = ref 0 in
      List.iter
        (fun (is_add, iv) ->
          if is_add then begin
            let id = !next in
            incr next;
            Isl.add sl iv id;
            Itree.Mutable.add it iv id;
            live := (iv, id) :: !live
          end
          else
            match !live with
            | [] -> ()
            | (iv, id) :: rest ->
                if not (Isl.remove sl iv (fun p -> p = id)) then
                  QCheck2.Test.fail_report "skip list remove failed";
                ignore (Itree.Mutable.remove it iv (fun p -> p = id));
                live := rest)
        ops;
      Isl.check_invariants sl;
      let ok = ref true in
      for x = 0 to 100 do
        let xf = float_of_int x in
        if
          List.sort compare (List.map snd (Isl.stab_list sl xf))
          <> List.sort compare
               (List.map snd (Itree.stab_list (Itree.Mutable.snapshot it) xf))
        then ok := false
      done;
      !ok && Isl.size sl = List.length !live)

let test_isl_point_intervals () =
  let t = Isl.create () in
  Isl.add t (I.point 5.0) "a";
  Isl.add t (I.point 5.0) "b";
  Isl.add t (I.make 0.0 10.0) "c";
  Isl.check_invariants t;
  Alcotest.(check int) "stab at the point" 3 (Isl.stab_count t 5.0);
  Alcotest.(check int) "stab off the point" 1 (Isl.stab_count t 6.0);
  Alcotest.(check bool) "remove one dup" true (Isl.remove t (I.point 5.0) (fun p -> p = "a"));
  Isl.check_invariants t;
  Alcotest.(check int) "one dup left" 2 (Isl.stab_count t 5.0)

let test_isl_remove_missing () =
  let t = Isl.create () in
  Isl.add t (I.make 1.0 2.0) 0;
  Alcotest.(check bool) "absent interval" false (Isl.remove t (I.make 5.0 6.0) (fun _ -> true));
  Alcotest.(check bool) "wrong payload" false (Isl.remove t (I.make 1.0 2.0) (fun p -> p = 9));
  Alcotest.(check bool) "empty rejected" true
    (try
       Isl.add t I.empty 1;
       false
     with Invalid_argument _ -> true)


(* ------------------------ Priority search tree ------------------------ *)

module Pst = Cq_index.Priority_search_tree

let prop_pst_stab_matches_brute =
  QCheck2.Test.make ~name:"pst: stab = brute force" ~count:300
    QCheck2.Gen.(pair (list_size (int_range 0 200) interval_gen)
                    (list_size (int_range 1 20) (map float_of_int (int_bound 100))))
    (fun (ivs, probes) ->
      let m = Pst.Mutable.create ~seed:17 () in
      List.iteri (fun i iv -> Pst.Mutable.add m iv i) ivs;
      Pst.check_invariants (Pst.Mutable.snapshot m);
      List.for_all
        (fun x ->
          let got = ref [] in
          Pst.Mutable.stab m x (fun _ p -> got := p :: !got);
          let want =
            List.mapi (fun i iv -> (i, iv)) ivs
            |> List.filter (fun (_, iv) -> I.stabs iv x)
            |> List.map fst
          in
          List.sort compare !got = List.sort compare want
          && (Pst.Mutable.stab_any m x <> None) = (want <> []))
        probes)

let prop_pst_remove =
  QCheck2.Test.make ~name:"pst: add/remove round trip" ~count:300
    QCheck2.Gen.(list_size (int_range 0 150) interval_gen)
    (fun ivs ->
      let m = Pst.Mutable.create ~seed:23 () in
      List.iteri (fun i iv -> Pst.Mutable.add m iv i) ivs;
      List.iteri
        (fun i iv ->
          if i mod 2 = 0 then
            if not (Pst.Mutable.remove m iv (fun p -> p = i)) then
              QCheck2.Test.fail_report "pst remove failed")
        ivs;
      Pst.check_invariants (Pst.Mutable.snapshot m);
      let got = ref [] in
      Pst.iter (fun _ p -> got := p :: !got) (Pst.Mutable.snapshot m);
      List.sort compare !got
      = (List.mapi (fun i _ -> i) ivs |> List.filter (fun i -> i mod 2 = 1)))

let test_pst_empty_and_errors () =
  let m : int Pst.Mutable.t = Pst.Mutable.create () in
  Alcotest.(check int) "empty size" 0 (Pst.Mutable.size m);
  Alcotest.(check bool) "stab_any on empty" true (Pst.Mutable.stab_any m 1.0 = None);
  Alcotest.(check bool) "remove on empty" false (Pst.Mutable.remove m (I.make 0.0 1.0) (fun _ -> true));
  Alcotest.check_raises "empty interval" (Invalid_argument "Priority_search_tree.add: empty interval")
    (fun () -> Pst.Mutable.add m I.empty 0)


let test_btree_validation () =
  Alcotest.check_raises "order < 2" (Invalid_argument "Btree.create: order must be >= 2")
    (fun () -> ignore (FB.create ~order:1 () : int FB.t));
  Alcotest.check_raises "unsorted bulk load"
    (Invalid_argument "Btree.of_sorted: input not sorted") (fun () ->
      ignore (FB.of_sorted [| (2.0, 0); (1.0, 1) |]));
  (* Bulk loads at many sizes keep the invariants. *)
  List.iter
    (fun n ->
      let t = FB.of_sorted ~order:4 (Array.init n (fun i -> (float_of_int i, i))) in
      FB.check_invariants t;
      Alcotest.(check int) "size" n (FB.length t))
    [ 0; 1; 3; 7; 8; 9; 63; 64; 65; 1000 ]

let test_treap_extras () =
  let rng = Rng.create 5 in
  let mk lo hi id = { TE.iv = I.make lo hi; id } in
  let t = T.of_list rng [ mk 0.0 5.0 0; mk 1.0 4.0 1; mk 2.0 9.0 2 ] in
  Alcotest.(check bool) "mem present" true (T.mem (mk 1.0 4.0 1) t);
  Alcotest.(check bool) "mem absent" false (T.mem (mk 1.0 4.0 9) t);
  (match T.min_elt t with
  | Some e -> Alcotest.(check int) "min by lo" 0 e.TE.id
  | None -> Alcotest.fail "nonempty treap");
  Alcotest.(check int) "fold counts" 3 (T.fold (fun acc _ -> acc + 1) 0 t);
  Alcotest.(check bool) "isect" true
    (I.equal (I.make 2.0 4.0) (T.isect t));
  Alcotest.(check bool) "empty isect is full line" true
    (I.stabs (T.isect T.empty) 1e18)

(* ------------------- flat interval tree / stab_batch ------------------ *)

module Flat = Cq_index.Flat_interval_tree
module SB = Cq_index.Stab_backend

(* The flat arena tree claims bit-for-bit the semantics of the boxed
   persistent tree — including emission order, so the lists are
   compared unsorted. *)
let prop_flat_matches_persistent_under_churn =
  QCheck2.Test.make ~name:"flat itree: agrees with persistent tree under churn" ~count:200
    QCheck2.Gen.(
      list_size (int_range 1 200) (pair (frequencyl [ (3, true); (2, false) ]) interval_gen))
    (fun ops ->
      let ft : int Flat.t = Flat.create () in
      let it = Itree.Mutable.create () in
      let live = ref [] in
      let next = ref 0 in
      List.iter
        (fun (is_add, iv) ->
          if is_add then begin
            let id = !next in
            incr next;
            Flat.add ft iv id;
            Itree.Mutable.add it iv id;
            live := (iv, id) :: !live
          end
          else
            match !live with
            | [] -> ()
            | (iv, id) :: rest ->
                if not (Flat.remove ft iv (fun p -> p = id)) then
                  QCheck2.Test.fail_report "flat tree remove failed";
                ignore (Itree.Mutable.remove it iv (fun p -> p = id));
                live := rest)
        ops;
      Flat.check_invariants ft;
      let ok = ref true in
      for x = 0 to 100 do
        let xf = float_of_int x in
        let got = ref [] in
        Flat.stab ft xf (fun p -> got := p :: !got);
        if List.rev !got <> List.map snd (Itree.stab_list (Itree.Mutable.snapshot it) xf)
        then ok := false
      done;
      !ok && Flat.size ft = List.length !live)

(* Every backend's batched descent must agree with a loop of scalar
   stabs, key by key, in the exact per-key order. *)
let prop_stab_batch_matches_stab_loop =
  QCheck2.Test.make ~name:"stab_batch = per-key stab loop (all backends)" ~count:150
    QCheck2.Gen.(
      pair (list_size (int_range 0 60) interval_gen)
        (list_size (int_range 0 20) (float_bound_inclusive 100.0)))
    (fun (ivs, key_list) ->
      let keys = Array.of_list key_list in
      List.for_all
        (fun kind ->
          let module B = (val SB.backend kind) in
          let t = B.create ~seed:11 in
          List.iteri (fun i iv -> B.add t iv i) ivs;
          let per_idx = Array.make (Array.length keys) [] in
          B.stab_batch t ~keys ~f:(fun ~idx p -> per_idx.(idx) <- p :: per_idx.(idx));
          let ok = ref true in
          Array.iteri
            (fun i key ->
              let want = ref [] in
              B.stab t key (fun p -> want := p :: !want);
              if per_idx.(i) <> !want then ok := false)
            keys;
          !ok)
        SB.all)

(* --------------------------------------------------------------------- *)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "cq_index"
    [
      ( "btree",
        [
          qc prop_btree_models_sorted_list;
          qc prop_btree_seeks;
          qc prop_btree_range;
          qc prop_btree_bulk_load;
          qc prop_btree_cursor_walk;
          qc prop_btree_walks;
          Alcotest.test_case "walk early stop" `Quick test_btree_walk_early_stop;
          Alcotest.test_case "neighbours" `Quick test_btree_neighbours;
          Alcotest.test_case "duplicates" `Quick test_btree_find_all_duplicates;
          Alcotest.test_case "empty tree" `Quick test_btree_empty;
          Alcotest.test_case "validation + bulk sizes" `Quick test_btree_validation;
        ] );
      ( "interval_tree",
        [
          qc prop_itree_stab_matches_brute;
          qc prop_itree_remove;
          qc prop_itree_query_overlaps;
          Alcotest.test_case "remove missing" `Quick test_itree_remove_missing;
          Alcotest.test_case "mutable facade" `Quick test_itree_mutable_facade;
        ] );
      ( "treap",
        [
          qc prop_treap_sorted;
          qc prop_treap_split_join;
          qc prop_treap_remove;
          Alcotest.test_case "mem/min/fold/isect" `Quick test_treap_extras;
        ] );
      ( "flat_interval_tree",
        [
          qc prop_flat_matches_persistent_under_churn;
          qc prop_stab_batch_matches_stab_loop;
        ] );
      ( "interval_skiplist",
        [
          qc prop_isl_stab_matches_brute;
          qc prop_isl_matches_interval_tree_under_churn;
          Alcotest.test_case "point intervals" `Quick test_isl_point_intervals;
          Alcotest.test_case "remove missing" `Quick test_isl_remove_missing;
        ] );
      ( "priority_search_tree",
        [
          qc prop_pst_stab_matches_brute;
          qc prop_pst_remove;
          Alcotest.test_case "empty/errors" `Quick test_pst_empty_and_errors;
        ] );
      ( "rtree",
        [
          qc prop_rtree_stab;
          qc prop_rtree_search;
          qc prop_rtree_delete;
          Alcotest.test_case "empty rect rejected" `Quick test_rtree_empty_rect_rejected;
        ] );
    ]
