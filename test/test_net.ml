(* Tests for the network front-end: wire-codec round-trips and decoder
   totality (property-based), the live loopback driver at 64 concurrent
   sessions, protocol fuzzing against a real server, slow-reader
   backpressure with provably bounded buffers, and the served-vs-direct
   differential oracle over a seed sweep.

   Ordering matters: the live-server tests run BEFORE the oracle suite.
   [Driver.run_workload] prefers forking the server into a child
   process, and [Unix.fork] refuses to run once this process has ever
   created a domain — which the oracle's direct replay does.  Listing
   the fork-capable tests first exercises both backends: forked here,
   domain-fallback in the oracle sweep. *)

module Frame = Cq_net.Frame
module Client = Cq_net.Client
module Server = Cq_net.Server
module Driver = Cq_net.Driver
module Batch = Cq_relation.Batch
module Oracle = Cq_robust.Oracle
module Engine = Cq_engine.Engine

(* ----------------------------- frame codec ----------------------------- *)

(* Floats built from small ints round-trip binary64 exactly, so frame
   equality after decode is plain structural equality. *)
let gfloat = QCheck2.Gen.(map (fun n -> float_of_int (n - 500)) (int_bound 1000))

let grows n =
  QCheck2.Gen.(array_size (int_bound n) (pair gfloat gfloat))

let gclient_frame =
  let open QCheck2.Gen in
  oneof
    [
      map (fun v -> Frame.Hello { version = v }) (int_bound 255);
      map2 (fun lo hi -> Frame.Register_band { lo; hi }) gfloat gfloat;
      map
        (fun (((a_lo, a_hi), c_lo), c_hi) ->
          Frame.Register_select { a_lo; a_hi; c_lo; c_hi })
        (pair (pair (pair gfloat gfloat) gfloat) gfloat);
      map (fun qid -> Frame.Drop { qid }) (int_bound 10_000);
      map2
        (fun side rows ->
          Frame.Batch
            { side = (if side then Frame.R else Frame.S); rows = Batch.of_rows rows })
        bool (grows 40);
      return Frame.Flush;
      map (fun token -> Frame.Ping { token }) (int_bound 1_000_000);
      return Frame.Bye;
    ]

let gserver_frame =
  let open QCheck2.Gen in
  let g4 = map (fun ((a, b), (c, d)) -> (a, b, c, d)) (pair (pair gfloat gfloat) (pair gfloat gfloat)) in
  oneof
    [
      map2 (fun v sid -> Frame.Welcome { version = v; session_id = sid }) (int_bound 255)
        (int_bound 100_000);
      map (fun qid -> Frame.Registered { qid }) (int_bound 10_000);
      map (fun qid -> Frame.Dropped { qid }) (int_bound 10_000);
      map (fun rows -> Frame.Batch_ok { rows }) (int_bound 100_000);
      map2 (fun qid rows -> Frame.Results { qid; rows }) (int_bound 10_000)
        (array_size (int_bound 40) g4);
      map (fun results -> Frame.Flushed { results }) (int_bound 100_000);
      map (fun token -> Frame.Pong { token }) (int_bound 1_000_000);
      map2
        (fun src (dropped, retry) ->
          Frame.Overload
            {
              source = (if src then Frame.Engine_admission else Frame.Slow_session);
              dropped;
              retry_after_ms = float_of_int retry;
            })
        bool
        (pair (int_bound 100_000) (int_bound 10_000));
      map2
        (fun code msg ->
          Frame.Err
            {
              code =
                (match code mod 4 with
                | 0 -> Frame.Err_proto
                | 1 -> Frame.Err_bad_request
                | 2 -> Frame.Err_engine
                | _ -> Frame.Err_server_full);
              message = msg;
            })
        (int_bound 3) (string_size ~gen:printable (int_bound 60));
      return Frame.Goodbye;
    ]

(* Feed [b] to [dec] in pseudo-random chunks of 1..7 bytes so every
   header/body boundary is crossed mid-chunk somewhere in the run. *)
let feed_chunked dec b seed =
  let st = Random.State.make [| seed |] in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    let n = min (1 + Random.State.int st 7) (len - !off) in
    Frame.Decoder.feed dec b ~off:!off ~len:n;
    off := !off + n
  done

(* Structural equality except batches, whose representation carries
   capacity: compare their extracted rows. *)
let client_frame_eq a b =
  match (a, b) with
  | Frame.Batch { side = s1; rows = r1 }, Frame.Batch { side = s2; rows = r2 } ->
      s1 = s2 && Batch.to_rows r1 = Batch.to_rows r2
  | a, b -> a = b

let test_client_roundtrip =
  QCheck2.Test.make ~name:"frame: client frames round-trip chunked" ~count:300
    QCheck2.Gen.(pair (list_size (int_bound 8) gclient_frame) (int_bound 1000))
    (fun (frames, seed) ->
      let buf = Buffer.create 1024 in
      List.iter (Frame.encode_client buf) frames;
      let dec = Frame.Decoder.create () in
      feed_chunked dec (Buffer.to_bytes buf) seed;
      let decoded = ref [] in
      let rec drain () =
        match Frame.Decoder.next_client dec with
        | Frame.Decoder.Frame f ->
            decoded := f :: !decoded;
            drain ()
        | Frame.Decoder.Awaiting -> ()
        | Frame.Decoder.Broken e ->
            QCheck2.Test.fail_reportf "decoder broke: %s" (Frame.proto_error_to_string e)
      in
      drain ();
      (match Frame.Decoder.at_eof dec with
      | Ok () -> ()
      | Error e ->
          QCheck2.Test.fail_reportf "eof not clean: %s" (Frame.proto_error_to_string e));
      let decoded = List.rev !decoded in
      List.length decoded = List.length frames
      && List.for_all2 client_frame_eq frames decoded)

let test_server_roundtrip =
  QCheck2.Test.make ~name:"frame: server frames round-trip chunked" ~count:300
    QCheck2.Gen.(pair (list_size (int_bound 8) gserver_frame) (int_bound 1000))
    (fun (frames, seed) ->
      let buf = Buffer.create 1024 in
      List.iter (Frame.encode_server buf) frames;
      let dec = Frame.Decoder.create () in
      feed_chunked dec (Buffer.to_bytes buf) seed;
      let decoded = ref [] in
      let rec drain () =
        match Frame.Decoder.next_server dec with
        | Frame.Decoder.Frame f ->
            decoded := f :: !decoded;
            drain ()
        | Frame.Decoder.Awaiting -> ()
        | Frame.Decoder.Broken e ->
            QCheck2.Test.fail_reportf "decoder broke: %s" (Frame.proto_error_to_string e)
      in
      drain ();
      List.rev !decoded = frames)

(* Totality: no byte soup makes the decoder raise or loop; it either
   yields frames, waits, or reports a sticky typed error. *)
let test_decoder_total =
  QCheck2.Test.make ~name:"frame: decoder total on garbage" ~count:500
    QCheck2.Gen.(pair (bytes_size (int_bound 512)) (int_bound 1000))
    (fun (garbage, seed) ->
      let dec = Frame.Decoder.create ~max_frame:4096 () in
      feed_chunked dec garbage seed;
      let steps = ref 0 in
      let rec drain () =
        incr steps;
        if !steps > Bytes.length garbage + 8 then
          QCheck2.Test.fail_reportf "decoder failed to converge"
        else
          match Frame.Decoder.next_client dec with
          | Frame.Decoder.Frame _ -> drain ()
          | Frame.Decoder.Awaiting -> `Awaiting
          | Frame.Decoder.Broken e -> `Broken e
      in
      match drain () with
      | `Awaiting -> true
      | `Broken e ->
          (* Sticky: the error repeats, it does not mutate or reset. *)
          (match Frame.Decoder.next_client dec with
          | Frame.Decoder.Broken e' -> e = e'
          | _ -> QCheck2.Test.fail_reportf "broken decoder recovered"))

let test_decoder_classification () =
  (* Unknown tag: 0x7f is in the client space but unassigned. *)
  let dec = Frame.Decoder.create () in
  Frame.Decoder.feed dec (Bytes.of_string "\x7f\x00\x00\x00\x00") ~off:0 ~len:5;
  (match Frame.Decoder.next_client dec with
  | Frame.Decoder.Broken (Frame.Unknown_tag { tag = 0x7f }) -> ()
  | _ -> Alcotest.fail "expected Unknown_tag 0x7f");
  (* Server tags are invisible to the client-direction decoder. *)
  let dec = Frame.Decoder.create () in
  let buf = Buffer.create 16 in
  Frame.encode_server buf Frame.Goodbye;
  let b = Buffer.to_bytes buf in
  Frame.Decoder.feed dec b ~off:0 ~len:(Bytes.length b);
  (match Frame.Decoder.next_client dec with
  | Frame.Decoder.Broken (Frame.Unknown_tag _) -> ()
  | _ -> Alcotest.fail "server tag decoded as client frame");
  (* Hostile length prefix: rejected from the header alone, before any
     body byte is buffered. *)
  let dec = Frame.Decoder.create ~max_frame:1024 () in
  Frame.Decoder.feed dec (Bytes.of_string "\x01\x7f\xff\xff\xff") ~off:0 ~len:5;
  (match Frame.Decoder.next_client dec with
  | Frame.Decoder.Broken (Frame.Oversized { limit = 1024; _ }) -> ()
  | _ -> Alcotest.fail "expected Oversized");
  (* Truncation is only an error at EOF; mid-stream it is Awaiting. *)
  let dec = Frame.Decoder.create () in
  Frame.Decoder.feed dec (Bytes.of_string "\x07\x00\x00\x00\x08\x01\x02") ~off:0 ~len:7;
  (match Frame.Decoder.next_client dec with
  | Frame.Decoder.Awaiting -> ()
  | _ -> Alcotest.fail "partial frame should be Awaiting");
  (match Frame.Decoder.at_eof dec with
  | Error (Frame.Truncated { buffered }) ->
      Alcotest.(check bool) "buffered bytes reported" true (buffered > 0)
  | _ -> Alcotest.fail "expected Truncated at eof")

(* ------------------------------- driver -------------------------------- *)

let test_gen_workload_deterministic () =
  let mk () =
    Driver.gen_workload ~seed:9 ~sessions:5 ~queries_per_session:3 ~batches:20
      ~rows_per_batch:8
  in
  Alcotest.(check bool) "same seed, same workload" true (mk () = mk ());
  let other =
    Driver.gen_workload ~seed:10 ~sessions:5 ~queries_per_session:3 ~batches:20
      ~rows_per_batch:8
  in
  Alcotest.(check bool) "different seed differs" true (mk () <> other)

let test_percentile () =
  let xs = Array.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 0.0)) "p50" 50.0 (Driver.percentile xs 50.0);
  Alcotest.(check (float 0.0)) "p99" 99.0 (Driver.percentile xs 99.0);
  Alcotest.(check (float 0.0)) "p100" 100.0 (Driver.percentile xs 100.0);
  Alcotest.(check (float 0.0)) "empty" 0.0 (Driver.percentile [||] 50.0)

(* ----------------------------- live server ----------------------------- *)

let test_fuzz_live_server () =
  let o = Driver.fuzz ~conns:32 ~seed:7 () in
  Alcotest.(check int) "no hangs" 0 o.Driver.fz_hangs;
  Alcotest.(check int) "every connection accounted" o.Driver.fz_conns
    (o.Driver.fz_typed_errors + o.Driver.fz_clean_eofs);
  match o.Driver.fz_server with
  | None -> Alcotest.fail "server did not survive the fuzz run"
  | Some st ->
      Alcotest.(check bool) "typed protocol errors counted" true
        (st.Server.net_proto_errors > 0)

let test_sixty_four_sessions () =
  let w =
    Driver.gen_workload ~seed:42 ~sessions:64 ~queries_per_session:2 ~batches:96
      ~rows_per_batch:16
  in
  match Driver.run_workload w with
  | Error e -> Alcotest.failf "run failed: %s" (Client.error_to_string e)
  | Ok o ->
      Alcotest.(check int) "one result stream per session" 64
        (Array.length o.Driver.results);
      Alcotest.(check int) "no rows dropped at lockstep depth" 0
        o.Driver.server.Server.net_results_dropped;
      Alcotest.(check bool) "results flowed" true
        (o.Driver.server.Server.net_results_delivered > 0);
      Alcotest.(check bool) "every session got its qids" true
        (Array.for_all (fun qs -> Array.length qs = 2) o.Driver.qids);
      Alcotest.(check int) "latency sample per batch" 96
        (Array.length o.Driver.latencies_ns)

(* ------------------------- slow-reader backpressure --------------------- *)

(* Step-driven: the server runs in THIS domain via [Server.step], the
   client is a raw socket we write to and deliberately do not read.
   With a 4-frame session queue, a flush fanning out ~10k result rows
   must keep at most 4 frames (2048 rows) buffered, drop the rest, and
   say so in one coalesced Slow_session OVERLOAD — bounded memory,
   typed degradation, no hang. *)

let loopback port = Unix.ADDR_INET (Unix.inet_addr_loopback, port)

let rsend fd frame =
  let buf = Buffer.create 256 in
  Frame.encode_client buf frame;
  let b = Buffer.to_bytes buf in
  let off = ref 0 in
  while !off < Bytes.length b do
    match Unix.write fd b !off (Bytes.length b - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* Step the server until [pred] matches a decoded frame or the round
   budget runs out; collected frames accumulate in [got]. *)
let step_until srv fd dec got ~what pred =
  let rbuf = Bytes.create 65536 in
  let deadline = 500 in
  let rec drain_frames () =
    match Frame.Decoder.next_server dec with
    | Frame.Decoder.Frame f ->
        got := f :: !got;
        if pred f then true else drain_frames ()
    | Frame.Decoder.Awaiting -> false
    | Frame.Decoder.Broken e ->
        Alcotest.failf "client decoder broke: %s" (Frame.proto_error_to_string e)
  in
  let rec loop n =
    if n > deadline then Alcotest.failf "timed out waiting for %s" what
    else if drain_frames () then ()
    else begin
      ignore (Server.step srv ~timeout:0.01);
      (match Unix.read fd rbuf 0 (Bytes.length rbuf) with
      | 0 -> Alcotest.failf "server closed while waiting for %s" what
      | n -> Frame.Decoder.feed dec rbuf ~off:0 ~len:n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop (n + 1)
    end
  in
  loop 0

let test_slow_reader_bounded () =
  let queue_cap = 4 in
  let config = { Server.default_config with session_queue = queue_cap } in
  let srv = Server.create ~config ~addr:(loopback 0) () in
  Fun.protect ~finally:(fun () -> Server.teardown srv) @@ fun () ->
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
  @@ fun () ->
  Unix.connect fd (loopback (Server.port srv));
  Unix.set_nonblock fd;
  let dec = Frame.Decoder.create () in
  let got = ref [] in
  rsend fd (Frame.Hello { version = Frame.protocol_version });
  step_until srv fd dec got ~what:"Welcome" (function
    | Frame.Welcome _ -> true
    | _ -> false);
  rsend fd (Frame.Register_band { lo = -1e6; hi = 1e6 });
  step_until srv fd dec got ~what:"Registered" (function
    | Frame.Registered _ -> true
    | _ -> false);
  (* 100 R rows x 100 S rows, all joining: ~10k result rows = ~20
     frames against a 4-frame queue.  Send everything and the flush
     BEFORE reading a single reply — the wire acks queue behind the
     results, so nothing here deadlocks only because every buffer
     involved is bounded and the server never blocks on one session. *)
  let rows = Array.init 100 (fun i -> (float_of_int (i mod 7), 0.0)) in
  rsend fd (Frame.Batch { side = Frame.R; rows = Batch.of_rows rows });
  rsend fd (Frame.Batch { side = Frame.S; rows = Batch.of_rows rows });
  rsend fd Frame.Flush;
  (* Let the server ingest and flush while we stay silent. *)
  for _ = 1 to 20 do
    ignore (Server.step srv ~timeout:0.01)
  done;
  let st = Server.stats srv in
  let max_rows_buffered = queue_cap * 512 in
  Alcotest.(check bool) "rows dropped at the bound" true
    (st.Server.net_results_dropped > 0);
  Alcotest.(check bool) "buffered rows bounded by the queue" true
    (st.Server.net_results_delivered <= max_rows_buffered);
  Alcotest.(check int) "every result row accounted" (100 * 100)
    (st.Server.net_results_delivered + st.Server.net_results_dropped);
  Alcotest.(check bool) "overload notice issued" true (st.Server.net_overloads > 0);
  (* The diagnostic dump agrees the session is parked, not growing. *)
  Alcotest.(check bool) "session visible in dump" true
    (String.length (Server.debug_dump srv) > 0);
  (* Now read: the coalesced Slow_session OVERLOAD must arrive with the
     full drop count, then the flush ack, and the session stays usable. *)
  step_until srv fd dec got ~what:"Flushed ack" (function
    | Frame.Flushed _ -> true
    | _ -> false);
  let overload_rows =
    List.fold_left
      (fun acc f ->
        match f with
        | Frame.Overload { source = Frame.Slow_session; dropped; _ } -> acc + dropped
        | _ -> acc)
      0 !got
  in
  Alcotest.(check int) "OVERLOAD reports every dropped row"
    st.Server.net_results_dropped overload_rows;
  let delivered_rows =
    List.fold_left
      (fun acc f ->
        match f with Frame.Results { rows; _ } -> acc + Array.length rows | _ -> acc)
      0 !got
  in
  Alcotest.(check int) "surviving rows all reach the wire"
    st.Server.net_results_delivered delivered_rows;
  rsend fd (Frame.Ping { token = 99 });
  step_until srv fd dec got ~what:"Pong" (function
    | Frame.Pong { token = 99 } -> true
    | _ -> false);
  rsend fd Frame.Bye;
  step_until srv fd dec got ~what:"Goodbye" (function
    | Frame.Goodbye -> true
    | _ -> false)

(* --------------------------- handshake gate ---------------------------- *)

(* HELLO must be the first frame of a session, exactly once: anything
   else before a successful handshake — and a repeated HELLO — draws a
   fatal ERR {proto} followed by a close, so version negotiation can
   never be bypassed. *)
let test_hello_required () =
  let srv = Server.create ~addr:(loopback 0) () in
  Fun.protect ~finally:(fun () -> Server.teardown srv) @@ fun () ->
  let violate frames ~what =
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
    @@ fun () ->
    Unix.connect fd (loopback (Server.port srv));
    Unix.set_nonblock fd;
    let dec = Frame.Decoder.create () in
    let got = ref [] in
    List.iter (rsend fd) frames;
    step_until srv fd dec got ~what (function
      | Frame.Err { code = Frame.Err_proto; _ } -> true
      | _ -> false);
    (* The violation is fatal: the session drains its error and closes. *)
    let rbuf = Bytes.create 1024 in
    let rec until_eof n =
      if n > 500 then Alcotest.failf "session survived: %s" what
      else begin
        ignore (Server.step srv ~timeout:0.01);
        match Unix.read fd rbuf 0 (Bytes.length rbuf) with
        | 0 -> ()
        | _ -> until_eof (n + 1)
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            until_eof (n + 1)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> until_eof (n + 1)
        | exception Unix.Unix_error (_, _, _) -> ()
      end
    in
    until_eof 0
  in
  violate [ Frame.Register_band { lo = 0.0; hi = 1.0 } ] ~what:"ERR for REGISTER before HELLO";
  violate [ Frame.Ping { token = 7 } ] ~what:"ERR for PING before HELLO";
  violate
    [
      Frame.Hello { version = Frame.protocol_version };
      Frame.Hello { version = Frame.protocol_version };
    ]
    ~what:"ERR for repeated HELLO";
  let st = Server.stats srv in
  Alcotest.(check bool) "handshake violations counted as protocol errors" true
    (st.Server.net_proto_errors >= 3)

(* ------------------------ fd budget / dead peers ------------------------ *)

(* select(2) cannot watch fds past FD_SETSIZE: the config validator
   must refuse session caps that could push a watched fd over it, and
   the default must sit inside the budget. *)
let test_max_sessions_fd_budget () =
  let dflt = Server.default_config in
  Alcotest.(check bool) "default max_sessions fits the select budget" true
    (dflt.Server.max_sessions <= 1000);
  match
    Server.try_create
      ~config:{ dflt with Server.max_sessions = 1024 }
      ~addr:(loopback 0) ()
  with
  | Error (Cq_util.Error.Invalid_parameter { name = "max_sessions"; _ }) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Cq_util.Error.to_string e)
  | Ok srv ->
      Server.teardown srv;
      Alcotest.fail "max_sessions past FD_SETSIZE was accepted"

(* A client that vanishes mid-stream (RST, unread fan-out in flight)
   must cost exactly its own session: server creation ignores SIGPIPE,
   so the dead socket's writes fail with EPIPE/ECONNRESET and the
   [`Gone] path reaps one session while the server keeps serving. *)
let test_abrupt_disconnect_survival () =
  let config = { Server.default_config with session_queue = 4 } in
  let srv = Server.create ~config ~addr:(loopback 0) () in
  Fun.protect ~finally:(fun () -> Server.teardown srv) @@ fun () ->
  (* The disposition itself: [Sys.signal] returns the old handler. *)
  let old = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Alcotest.(check bool) "SIGPIPE ignored after server creation" true
    (old = Sys.Signal_ignore);
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (loopback (Server.port srv));
  Unix.set_nonblock fd;
  let dec = Frame.Decoder.create () in
  let got = ref [] in
  rsend fd (Frame.Hello { version = Frame.protocol_version });
  step_until srv fd dec got ~what:"Welcome" (function
    | Frame.Welcome _ -> true
    | _ -> false);
  rsend fd (Frame.Register_band { lo = -1e6; hi = 1e6 });
  step_until srv fd dec got ~what:"Registered" (function
    | Frame.Registered _ -> true
    | _ -> false);
  (* Pile up fan-out this client will never read, then vanish with an
     RST (linger 0) while result frames are still queued/streaming. *)
  let rows = Array.init 64 (fun i -> (float_of_int (i mod 5), 0.0)) in
  rsend fd (Frame.Batch { side = Frame.R; rows = Batch.of_rows rows });
  rsend fd (Frame.Batch { side = Frame.S; rows = Batch.of_rows rows });
  rsend fd Frame.Flush;
  for _ = 1 to 5 do
    ignore (Server.step srv ~timeout:0.01)
  done;
  Unix.setsockopt_optint fd Unix.SO_LINGER (Some 0);
  Unix.close fd;
  let rec reaped n =
    if n > 500 then Alcotest.fail "dead session never reaped"
    else begin
      ignore (Server.step srv ~timeout:0.01);
      if Server.active_sessions srv > 0 then reaped (n + 1)
    end
  in
  reaped 0;
  (* Same server, fresh client: still alive and speaking. *)
  let fd2 = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd2 with Unix.Unix_error (_, _, _) -> ())
  @@ fun () ->
  Unix.connect fd2 (loopback (Server.port srv));
  Unix.set_nonblock fd2;
  let dec2 = Frame.Decoder.create () in
  let got2 = ref [] in
  rsend fd2 (Frame.Hello { version = Frame.protocol_version });
  step_until srv fd2 dec2 got2 ~what:"Welcome after abrupt peer death" (function
    | Frame.Welcome _ -> true
    | _ -> false);
  rsend fd2 (Frame.Ping { token = 5 });
  step_until srv fd2 dec2 got2 ~what:"Pong after abrupt peer death" (function
    | Frame.Pong { token = 5 } -> true
    | _ -> false)

(* ------------------------------- oracle -------------------------------- *)

let test_serve_oracle_sweep () =
  (* 100+ seeds.  The first run's direct replay creates domains, after
     which [run_workload]'s fork attempt permanently fails and every
     later server runs on the domain fallback — both backends get
     covered.  Bulk of the sweep at shards=1 (this box has one core);
     the tail re-checks the multi-shard merge path. *)
  let failures = ref [] in
  for seed = 1 to 96 do
    let o =
      Oracle.run_serve ~sessions:(1 + (seed mod 6)) ~shards:1 ~seed ~ops:60 ()
    in
    if not (Oracle.passed o) then failures := o :: !failures
  done;
  for seed = 97 to 108 do
    let o =
      Oracle.run_serve ~sessions:(1 + (seed mod 4)) ~shards:(2 + (seed mod 2)) ~seed
        ~ops:40 ()
    in
    if not (Oracle.passed o) then failures := o :: !failures
  done;
  match !failures with
  | [] -> ()
  | o :: _ ->
      Alcotest.failf "serve oracle diverged (%d seeds): first %a"
        (List.length !failures) Oracle.pp_outcome o

(* ------------------------------------------------------------------ *)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "net"
    [
      ( "frame",
        [
          qt test_client_roundtrip;
          qt test_server_roundtrip;
          qt test_decoder_total;
          Alcotest.test_case "error classification" `Quick test_decoder_classification;
        ] );
      ( "driver",
        [
          Alcotest.test_case "workload deterministic" `Quick
            test_gen_workload_deterministic;
          Alcotest.test_case "percentile" `Quick test_percentile;
        ] );
      ( "live",
        [
          Alcotest.test_case "fuzz: garbage never hangs the server" `Quick
            test_fuzz_live_server;
          Alcotest.test_case "64 concurrent sessions" `Quick test_sixty_four_sessions;
          Alcotest.test_case "slow reader: bounded queues + OVERLOAD" `Quick
            test_slow_reader_bounded;
          Alcotest.test_case "handshake: HELLO first, exactly once" `Quick
            test_hello_required;
          Alcotest.test_case "max_sessions capped by select fd budget" `Quick
            test_max_sessions_fd_budget;
          Alcotest.test_case "abrupt client death: one session, no SIGPIPE" `Quick
            test_abrupt_disconnect_survival;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "served matches direct over 108 seeds" `Quick
            test_serve_oracle_sweep;
        ] );
    ]
