(* Tests for the robustness layer: the fault-stream generator's
   determinism, the differential oracle passing on every structure, the
   invariant auditors catching deliberately injected corruption, and
   the engine's input-validation taxonomy. *)

module I = Cq_interval.Interval
module Err = Cq_util.Error
module Oracle = Cq_robust.Oracle
module Invariant = Cq_robust.Invariant
module Fault = Cq_robust.Fault
module Engine = Cq_engine.Engine

let fuzz_ops = 3_000

(* ------------------------- determinism -------------------------------- *)

let test_fault_gen_deterministic () =
  let a = Fault.gen ~seed:5 ~n:500 and b = Fault.gen ~seed:5 ~n:500 in
  Alcotest.(check bool) "same seed, same stream" true (a = b);
  let c = Fault.gen ~seed:6 ~n:500 in
  Alcotest.(check bool) "different seed, different stream" true (a <> c);
  (* Compare printed forms: Reject_ins_r ops carry NaN attributes, and
     NaN <> NaN under structural equality. *)
  let dump ops =
    String.concat "; "
      (Array.to_list (Array.map (Format.asprintf "%a" Fault.pp_engine_op) ops))
  in
  Alcotest.(check string) "engine stream deterministic"
    (dump (Fault.gen_engine ~seed:5 ~n:500))
    (dump (Fault.gen_engine ~seed:5 ~n:500))

let test_fuzz_replay_deterministic () =
  let o1 = Oracle.run_index (module Oracle.Treap_driver) ~seed:11 ~ops:1_000 in
  let o2 = Oracle.run_index (module Oracle.Treap_driver) ~seed:11 ~ops:1_000 in
  Alcotest.(check int) "same final size" o1.Oracle.final_size o2.Oracle.final_size;
  Alcotest.(check bool) "same verdict" (Oracle.passed o1) (Oracle.passed o2)

(* --------------------- oracle agreement ------------------------------- *)

let check_outcome o =
  if not (Oracle.passed o) then Alcotest.fail (Format.asprintf "@[<v>%a@]" Oracle.pp_outcome o)

let test_fuzz_indexes () =
  List.iter (fun d -> check_outcome (Oracle.run_index d ~seed:3 ~ops:fuzz_ops)) Oracle.index_drivers

let test_fuzz_btree () = check_outcome (Oracle.run_btree ~seed:3 ~ops:fuzz_ops)
let test_fuzz_tracker () = check_outcome (Oracle.run_tracker ~seed:3 ~ops:fuzz_ops ())

let test_fuzz_partitions () =
  check_outcome (Oracle.run_lazy_partition ~seed:3 ~ops:fuzz_ops);
  check_outcome (Oracle.run_refined_partition ~seed:3 ~ops:fuzz_ops)

let test_fuzz_engine () =
  (* Every pluggable backend behind the same differential mirror. *)
  List.iter
    (fun backend -> check_outcome (Oracle.run_engine ~backend ~seed:3 ~ops:400 ()))
    Cq_index.Stab_backend.all

let test_fuzz_batch () =
  (* The flat-batch-vs-per-tuple multiset property over 100+ seeds on
     the default backend (the one with a native batched descent), plus
     a smaller sweep over the loop-fallback backends. *)
  List.iter
    (fun seed -> check_outcome (Oracle.run_batch ~seed ~ops:200 ()))
    (List.init 110 (fun i -> i + 1));
  List.iter
    (fun seed ->
      List.iter
        (fun backend -> check_outcome (Oracle.run_batch ~backend ~seed ~ops:200 ()))
        Cq_index.Stab_backend.all)
    (List.init 10 (fun i -> i + 1))

let test_fuzz_parallel () =
  (* The parallel-vs-sequential multiset property across many seeds and
     both interesting shard counts (2 = minimal fan-out, 4 = more
     strips than the striping period wraps around). *)
  List.iter
    (fun seed ->
      check_outcome (Oracle.run_parallel ~shards:2 ~seed ~ops:300 ());
      check_outcome (Oracle.run_parallel ~shards:4 ~seed ~ops:300 ()))
    (List.init 10 (fun i -> i + 1))

let test_fuzz_drift () =
  (* The migration-safety sweep: 110 seeds of the walking-hotspot
     stream, each run required to force at least one strip migration
     and to stay bit-for-bit multiset-identical to the 1-shard run
     across them (ISSUE 10's acceptance bar).  A smaller shards = 2
     sweep covers the minimal fan-out where source and target are the
     only shards. *)
  List.iter
    (fun seed -> check_outcome (Oracle.run_drift ~shards:4 ~seed ~ops:240 ()))
    (List.init 110 (fun i -> i + 1));
  List.iter
    (fun seed -> check_outcome (Oracle.run_drift ~shards:2 ~seed ~ops:240 ()))
    (List.init 10 (fun i -> i + 1))

let test_drift_gen_deterministic () =
  let dump ops =
    String.concat "; "
      (Array.to_list (Array.map (Format.asprintf "%a" Fault.pp_drift_op) ops))
  in
  Alcotest.(check string) "same seed, same drift stream"
    (dump (Fault.gen_drift ~shards:4 ~seed:5 ~n:200 ()))
    (dump (Fault.gen_drift ~shards:4 ~seed:5 ~n:200 ()));
  Alcotest.(check bool) "different seed, different drift stream" true
    (dump (Fault.gen_drift ~shards:4 ~seed:5 ~n:200 ())
    <> dump (Fault.gen_drift ~shards:4 ~seed:6 ~n:200 ()))

let test_burst_gen_deterministic () =
  let dump ops =
    String.concat "; "
      (Array.to_list (Array.map (Format.asprintf "%a" Fault.pp_burst_op) ops))
  in
  Alcotest.(check string) "same seed, same burst stream"
    (dump (Fault.gen_burst ~seed:5 ~n:300))
    (dump (Fault.gen_burst ~seed:5 ~n:300));
  Alcotest.(check bool) "different seed, different burst stream" true
    (dump (Fault.gen_burst ~seed:5 ~n:300) <> dump (Fault.gen_burst ~seed:6 ~n:300))

let test_fuzz_shed () =
  (* The shed-mode differential check over many seeds: the degraded
     answers' claimed relative-error bounds must always contain the
     true cardinality.  shards = 1 covers the estimator math cheaply;
     a smaller shards = 4 sweep covers the cross-shard merge. *)
  List.iter
    (fun seed ->
      check_outcome (Oracle.run_shed ~shards:1 ~rate:0.5 ~seed ~ops:150 ()))
    (List.init 100 (fun i -> i + 1));
  List.iter
    (fun seed ->
      check_outcome (Oracle.run_shed ~shards:4 ~rate:0.25 ~seed ~ops:150 ());
      check_outcome (Oracle.run_shed ~shards:4 ~rate:0.75 ~seed ~ops:150 ()))
    (List.init 10 (fun i -> i + 1))

let test_fuzz_shed_adaptive () =
  (* The mixed-rate schedule (exact phases at 1.0 interleaved with
     forced sub-unit phases) over many seeds: results delivered during
     exact phases must fold into the estimates at p = 1, so the claimed
     bounds cover the whole stream, not just the shedding phases. *)
  List.iter
    (fun seed -> check_outcome (Oracle.run_shed_adaptive ~seed ~ops:150 ()))
    (List.init 100 (fun i -> i + 1))

let test_fuzz_burst () =
  (* Seeded burst replay through Shed admission: ingest must never
     block or error, and the degraded answers must stay within their
     claimed bounds. *)
  List.iter
    (fun seed -> check_outcome (Oracle.run_burst ~shards:2 ~seed ~ops:400 ()))
    (List.init 5 (fun i -> i + 1))

let test_audit_workload_clean () =
  List.iter
    (fun (name, report) ->
      match report with
      | Ok () -> ()
      | Error vs -> Alcotest.failf "%s: %d violations" name (List.length vs))
    (Oracle.audit_workload ~seed:9 ~n:2_000 ())

(* --------------------- corruption detection --------------------------- *)

module E = struct
  type t = int * I.t

  let compare (i1, v1) (i2, v2) =
    match Float.compare (I.lo v1) (I.lo v2) with 0 -> Int.compare i1 i2 | c -> c

  let interval (_, v) = v
end

module Tracker = Hotspot_core.Hotspot_tracker.Make (E)
module Tracker_audit = Invariant.Tracker (E) (Tracker)

let hot_tracker () =
  let t = Tracker.create ~alpha:0.2 ~seed:1 () in
  for i = 0 to 19 do
    Tracker.insert t (i, I.make (float_of_int i *. 0.1) 10.0)
  done;
  Alcotest.(check bool) "tracker has a hotspot" true (Tracker.num_hotspots t > 0);
  (match Tracker_audit.audit t with
  | Ok () -> ()
  | Error vs -> Alcotest.failf "clean tracker failed its audit (%d violations)" (List.length vs));
  t

let test_corrupt_where_hot_caught () =
  let t = hot_tracker () in
  Alcotest.(check bool) "corruption applied" true (Tracker.Testing.corrupt_where_hot t);
  match Tracker_audit.audit t with
  | Ok () -> Alcotest.fail "corrupted where_hot map went undetected"
  | Error vs -> Alcotest.(check bool) "non-empty violation report" true (vs <> [])

let test_corrupt_isect_caught () =
  let t = hot_tracker () in
  Alcotest.(check bool) "corruption applied" true (Tracker.Testing.corrupt_isect t);
  match Tracker_audit.audit t with
  | Ok () -> Alcotest.fail "corrupted group intersection went undetected"
  | Error vs -> Alcotest.(check bool) "non-empty violation report" true (vs <> [])

let test_merge_reports () =
  let v = { Invariant.structure = "x"; check = "c"; detail = "d" } in
  (match Invariant.merge [ Ok (); Ok () ] with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "merge of clean reports not clean");
  match Invariant.merge [ Ok (); Error [ v ]; Error [ v; v ] ] with
  | Ok () -> Alcotest.fail "merge dropped violations"
  | Error vs -> Alcotest.(check int) "all violations kept" 3 (List.length vs)

(* --------------------- engine input validation ------------------------ *)

let test_engine_rejects_bad_alpha () =
  (match Engine.try_create ~alpha:0.0 () with
  | Error (Err.Invalid_parameter { name = "alpha"; _ }) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Err.to_string e)
  | Ok _ -> Alcotest.fail "alpha = 0 accepted");
  match Engine.try_create ~alpha:1.5 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "alpha > 1 accepted"

let test_engine_rejects_nonfinite_tuples () =
  let eng = Engine.create () in
  (match Engine.try_insert_r eng ~a:Float.nan ~b:1.0 with
  | Error (Err.Not_finite { name = "a"; _ }) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Err.to_string e)
  | Ok _ -> Alcotest.fail "NaN attribute accepted");
  (match Engine.try_insert_s eng ~b:Float.infinity ~c:0.0 with
  | Error (Err.Not_finite { name = "b"; _ }) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Err.to_string e)
  | Ok _ -> Alcotest.fail "infinite attribute accepted");
  (* A rejected bulk load must leave the engine untouched. *)
  (match Engine.try_load_s eng [| (1.0, 2.0); (Float.nan, 0.0) |] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "bulk load with a NaN row accepted");
  Alcotest.(check int) "no rows slipped in" 0 (Engine.stats eng).s_size

let test_engine_rejects_empty_windows () =
  let eng = Engine.create () in
  (match Engine.try_subscribe_band eng ~range:I.empty (fun _ _ -> ()) with
  | Error (Err.Empty_range { name = "range" }) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Err.to_string e)
  | Ok _ -> Alcotest.fail "empty band window accepted");
  match Engine.try_subscribe_select eng ~range_a:(I.make 0.0 1.0) ~range_c:I.empty (fun _ _ -> ()) with
  | Error (Err.Empty_range { name = "range_c" }) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Err.to_string e)
  | Ok _ -> Alcotest.fail "empty select window accepted"

let test_plain_variants_raise_cq_error () =
  (match Engine.create ~alpha:(-1.0) () with
  | exception Err.Cq_error (Err.Invalid_parameter _) -> ()
  | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "bad alpha accepted");
  let eng = Engine.create () in
  match Engine.insert_r eng ~a:0.0 ~b:Float.nan with
  | exception Err.Cq_error (Err.Not_finite _) -> ()
  | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "NaN accepted"

let test_engine_seed_determinism () =
  (* The seed must actually thread through to the trackers: identical
     runs give identical stats, bit for bit. *)
  let run () =
    let eng = Engine.create ~alpha:0.3 ~seed:77 () in
    let hits = ref 0 in
    for i = 0 to 9 do
      ignore
        (Engine.subscribe_band eng
           ~range:(I.make (float_of_int (i mod 3) -. 1.0) (float_of_int (i mod 3)))
           (fun _ _ -> incr hits))
    done;
    for i = 0 to 99 do
      ignore (Engine.insert_r eng ~a:(float_of_int (i mod 7)) ~b:(float_of_int (i mod 11)));
      ignore (Engine.insert_s eng ~b:(float_of_int (i mod 11)) ~c:(float_of_int (i mod 5)))
    done;
    (Engine.stats eng, !hits)
  in
  let s1, h1 = run () and s2, h2 = run () in
  Alcotest.(check bool) "identical stats" true (s1 = s2);
  Alcotest.(check int) "identical deliveries" h1 h2

let () =
  Alcotest.run "robust"
    [
      ( "fault",
        [
          Alcotest.test_case "stream deterministic" `Quick test_fault_gen_deterministic;
          Alcotest.test_case "burst stream deterministic" `Quick test_burst_gen_deterministic;
          Alcotest.test_case "drift stream deterministic" `Quick test_drift_gen_deterministic;
          Alcotest.test_case "replay deterministic" `Quick test_fuzz_replay_deterministic;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "stab indexes agree" `Slow test_fuzz_indexes;
          Alcotest.test_case "btree agrees" `Quick test_fuzz_btree;
          Alcotest.test_case "tracker agrees" `Quick test_fuzz_tracker;
          Alcotest.test_case "partitions agree" `Quick test_fuzz_partitions;
          Alcotest.test_case "engine agrees" `Quick test_fuzz_engine;
          Alcotest.test_case "batch ingest matches per-tuple" `Quick test_fuzz_batch;
          Alcotest.test_case "parallel matches sequential" `Quick test_fuzz_parallel;
          Alcotest.test_case "drift forces migrations, stays deterministic" `Quick
            test_fuzz_drift;
          Alcotest.test_case "shed answers within claimed bounds" `Quick test_fuzz_shed;
          Alcotest.test_case "adaptive-rate shed answers within bounds" `Quick
            test_fuzz_shed_adaptive;
          Alcotest.test_case "burst replay stays non-blocking" `Quick test_fuzz_burst;
          Alcotest.test_case "workload audit clean" `Quick test_audit_workload_clean;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "where_hot caught" `Quick test_corrupt_where_hot_caught;
          Alcotest.test_case "isect caught" `Quick test_corrupt_isect_caught;
          Alcotest.test_case "merge keeps violations" `Quick test_merge_reports;
        ] );
      ( "validation",
        [
          Alcotest.test_case "bad alpha" `Quick test_engine_rejects_bad_alpha;
          Alcotest.test_case "non-finite tuples" `Quick test_engine_rejects_nonfinite_tuples;
          Alcotest.test_case "empty windows" `Quick test_engine_rejects_empty_windows;
          Alcotest.test_case "plain variants raise Cq_error" `Quick test_plain_variants_raise_cq_error;
          Alcotest.test_case "seed determinism" `Quick test_engine_seed_determinism;
        ] );
    ]
