(* Tests for the cq_util substrate: RNG determinism, distribution
   sanity, vector semantics, summary statistics. *)

open Cq_util

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------- Rng --------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let distinct = ref false in
  for _ = 1 to 10 do
    if Rng.int64 a <> Rng.int64 b then distinct := true
  done;
  Alcotest.(check bool) "different seeds diverge" true !distinct

let test_rng_float_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    if x < 0.0 || x >= 1.0 then Alcotest.failf "float out of [0,1): %g" x
  done

let test_rng_int_range () =
  let rng = Rng.create 9 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 17 in
    if x < 0 || x >= 17 then Alcotest.failf "int out of [0,17): %d" x
  done

let test_rng_int_rejects_bad_bound () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  (* The split stream must not be a shifted copy of the parent. *)
  let xs = Array.init 16 (fun _ -> Rng.int64 a) in
  let ys = Array.init 16 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_uniformity_coarse () =
  (* Chi-square-ish smoke check on 10 buckets. *)
  let rng = Rng.create 11 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = int_of_float (Rng.float rng *. 10.0) in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 10 in
      if abs (c - expected) > expected / 10 then
        Alcotest.failf "bucket %d count %d too far from %d" i c expected)
    buckets

(* ------------------------------- Dist -------------------------------- *)

let test_uniform_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let x = Dist.uniform rng ~lo:5.0 ~hi:9.0 in
    if x < 5.0 || x >= 9.0 then Alcotest.failf "uniform out of range: %g" x
  done

let test_normal_moments () =
  let rng = Rng.create 13 in
  let n = 200_000 in
  let xs = Array.init n (fun _ -> Dist.normal rng ~mu:50.0 ~sigma:10.0) in
  let m = Stats.mean xs and sd = Stats.stddev xs in
  if Float.abs (m -. 50.0) > 0.2 then Alcotest.failf "normal mean off: %g" m;
  if Float.abs (sd -. 10.0) > 0.2 then Alcotest.failf "normal stddev off: %g" sd

let test_normal_clamped () =
  let rng = Rng.create 17 in
  for _ = 1 to 10_000 do
    let x = Dist.normal_clamped rng ~mu:0.0 ~sigma:100.0 ~lo:(-50.0) ~hi:50.0 in
    if x < -50.0 || x > 50.0 then Alcotest.failf "clamped normal out of range: %g" x
  done

let test_zipf_weights_normalised () =
  let w = Dist.zipf_weights ~n:5000 ~beta:1.0 in
  check_float "sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 w);
  (* Monotone decreasing. *)
  for i = 1 to Array.length w - 1 do
    if w.(i) > w.(i - 1) then Alcotest.fail "zipf weights not decreasing"
  done

let test_zipf_rank_frequencies () =
  let rng = Rng.create 23 in
  let w = Dist.zipf_weights ~n:100 ~beta:1.0 in
  let cdf = Dist.cdf_of_weights w in
  let counts = Array.make 100 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let r = Dist.zipf rng ~cdf in
    counts.(r) <- counts.(r) + 1
  done;
  (* Rank 0 should be drawn roughly w.(0) of the time. *)
  let f0 = float_of_int counts.(0) /. float_of_int n in
  if Float.abs (f0 -. w.(0)) > 0.01 then Alcotest.failf "rank-0 frequency %g vs weight %g" f0 w.(0)

let test_exponential_positive_mean () =
  let rng = Rng.create 29 in
  let xs = Array.init 100_000 (fun _ -> Dist.exponential rng ~rate:2.0) in
  Array.iter (fun x -> if x < 0.0 then Alcotest.fail "negative exponential draw") xs;
  let m = Stats.mean xs in
  if Float.abs (m -. 0.5) > 0.02 then Alcotest.failf "exponential mean off: %g" m

(* ------------------------------- Stats ------------------------------- *)

let test_stats_basics () =
  check_float "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "mean empty" 0.0 (Stats.mean [||]);
  check_float "stddev" (sqrt 1.25) (Stats.stddev [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "median" 2.0 (Stats.median [| 3.0; 1.0; 2.0 |]);
  check_float "p100 = max" 9.0 (Stats.percentile [| 9.0; 1.0; 5.0 |] 100.0);
  check_float "geometric mean" 2.0 (Stats.geometric_mean [| 1.0; 2.0; 4.0 |]);
  check_float "geometric mean w/ nonpositive" 0.0 (Stats.geometric_mean [| 1.0; -2.0 |])

let test_stats_percentile_edges () =
  let xs = [| 9.0; 1.0; 5.0; 3.0 |] in
  check_float "p0 = min" 1.0 (Stats.percentile xs 0.0);
  check_float "p100 = max" 9.0 (Stats.percentile xs 100.0);
  check_float "p below 0 clamps to min" 1.0 (Stats.percentile xs (-10.0));
  check_float "p above 100 clamps to max" 9.0 (Stats.percentile xs 250.0);
  (* Single-element array: every percentile is that element. *)
  check_float "singleton p0" 7.0 (Stats.percentile [| 7.0 |] 0.0);
  check_float "singleton p50" 7.0 (Stats.percentile [| 7.0 |] 50.0);
  check_float "singleton p100" 7.0 (Stats.percentile [| 7.0 |] 100.0);
  (* Empty array: 0 at every p, no exception. *)
  check_float "empty p0" 0.0 (Stats.percentile [||] 0.0);
  check_float "empty p50" 0.0 (Stats.percentile [||] 50.0);
  check_float "empty p100" 0.0 (Stats.percentile [||] 100.0);
  check_float "empty median" 0.0 (Stats.median [||])

let test_stats_geometric_mean_zero () =
  check_float "zero collapses to 0" 0.0 (Stats.geometric_mean [| 2.0; 0.0; 8.0 |]);
  check_float "empty is 0" 0.0 (Stats.geometric_mean [||]);
  check_float "singleton" 3.0 (Stats.geometric_mean [| 3.0 |])

(* -------------------------------- Vec -------------------------------- *)

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  for i = 0 to 99 do
    Alcotest.(check int) "get" i (Vec.get v i)
  done

let test_vec_pop_lifo () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Alcotest.(check int) "pop" 3 (Vec.pop v);
  Alcotest.(check int) "pop" 2 (Vec.pop v);
  Alcotest.(check int) "length" 1 (Vec.length v)

let test_vec_swap_remove () =
  let v = Vec.of_list [ 10; 20; 30; 40 ] in
  let removed = Vec.swap_remove v 1 in
  Alcotest.(check int) "removed" 20 removed;
  Alcotest.(check (list int)) "rest" [ 10; 40; 30 ] (Vec.to_list v)

let test_vec_bounds () =
  let v = Vec.of_list [ 1 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get: index out of bounds") (fun () ->
      ignore (Vec.get v 1));
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty") (fun () ->
      Vec.clear v;
      ignore (Vec.pop v))

let test_vec_sort_fold () =
  let v = Vec.of_list [ 3; 1; 2 ] in
  Vec.sort compare v;
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] (Vec.to_list v);
  Alcotest.(check int) "fold" 6 (Vec.fold ( + ) 0 v);
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 2) v);
  Alcotest.(check bool) "exists not" false (Vec.exists (fun x -> x = 9) v)

(* qcheck: Vec behaves like a list under pushes and pops. *)
let prop_vec_models_list =
  QCheck2.Test.make ~name:"vec models list" ~count:500
    QCheck2.Gen.(list (int_bound 1000))
    (fun ops ->
      let v = Vec.create () in
      List.iter (Vec.push v) ops;
      Vec.to_list v = ops)

(* Growth across doubling boundaries: sizes clustered around powers of
   two (the capacity edges of the doubling policy) must preserve every
   element and the length, whatever the initial capacity. *)
let prop_vec_growth_capacity_edges =
  let gen =
    QCheck2.Gen.(
      pair (int_bound 6)
        (map2 (fun k d -> Int.max 0 ((1 lsl k) + d - 2)) (int_bound 10) (int_bound 4)))
  in
  QCheck2.Test.make ~name:"vec growth across capacity edges" ~count:300 gen
    (fun (cap, n) ->
      let v = if cap = 0 then Vec.create () else Vec.make cap in
      for i = 0 to n - 1 do
        Vec.push v i
      done;
      Vec.length v = n
      &&
      let ok = ref true in
      for i = 0 to n - 1 do
        if Vec.get v i <> i then ok := false
      done;
      !ok)

(* Clear-and-reuse (the hot-path scratch pattern): after any number of
   fill/clear rounds the vec models exactly the last round's pushes —
   no stale elements, no leftover length. *)
let prop_vec_clear_reuse =
  QCheck2.Test.make ~name:"vec clear-and-reuse models last round" ~count:300
    QCheck2.Gen.(list_size (int_range 1 6) (list (int_bound 1000)))
    (fun rounds ->
      let v = Vec.create () in
      List.iter
        (fun round ->
          Vec.clear v;
          List.iter (Vec.push v) round)
        rounds;
      let last = List.nth rounds (List.length rounds - 1) in
      Vec.to_list v = last)

(* iter/iteri/fold visit in push order, and to_array agrees. *)
let prop_vec_iteration_order =
  QCheck2.Test.make ~name:"vec iteration follows push order" ~count:300
    QCheck2.Gen.(list (int_bound 1000))
    (fun ops ->
      let v = Vec.create () in
      List.iter (Vec.push v) ops;
      let seen = ref [] in
      Vec.iter (fun x -> seen := x :: !seen) v;
      let indexed_ok = ref true in
      Vec.iteri (fun i x -> if Vec.get v i <> x then indexed_ok := false) v;
      List.rev !seen = ops
      && !indexed_ok
      && Vec.fold (fun acc x -> x :: acc) [] v = List.rev ops
      && Array.to_list (Vec.to_array v) = ops)

(* Mixed push/pop/swap_remove stream against a list model. *)
let prop_vec_mixed_ops_model =
  let open QCheck2.Gen in
  let op = oneof [ map (fun x -> `Push x) (int_bound 1000); pure `Pop; pure `Swap ] in
  QCheck2.Test.make ~name:"vec mixed ops model" ~count:300 (list op) (fun ops ->
      let v = Vec.create () in
      let model = ref [] in
      List.iter
        (fun o ->
          match o with
          | `Push x ->
              Vec.push v x;
              model := !model @ [ x ]
          | `Pop ->
              if Vec.length v > 0 then begin
                let got = Vec.pop v in
                let n = List.length !model in
                let last = List.nth !model (n - 1) in
                if got <> last then model := [ -1 ] (* force mismatch *)
                else model := List.filteri (fun i _ -> i < n - 1) !model
              end
          | `Swap ->
              if Vec.length v > 0 then begin
                let got = Vec.swap_remove v 0 in
                match !model with
                | first :: rest ->
                    if got <> first then model := [ -1 ]
                    else begin
                      (* swap_remove moves the last element into slot 0. *)
                      let n = List.length rest in
                      if n = 0 then model := []
                      else
                        model :=
                          List.nth rest (n - 1)
                          :: List.filteri (fun i _ -> i < n - 1) rest
                    end
                | [] -> ()
              end)
        ops;
      Vec.to_list v = !model)

(* ------------------------------- Order ------------------------------- *)

(* The monomorphic comparators that replaced polymorphic [List.sort
   compare] on the result paths (CQL001) must order exactly as the
   polymorphic primitive did — here, in test code, poly compare is the
   oracle. *)
let prop_order_int_pair_matches_poly =
  QCheck2.Test.make ~name:"Order.int_pair orders like polymorphic compare" ~count:500
    QCheck2.Gen.(list (pair small_signed_int small_signed_int))
    (fun l -> List.sort Order.int_pair l = List.sort compare l)

let prop_order_float_pair_matches_poly =
  (* Finite floats only: on NaN, Float.compare is total where the
     polymorphic primitive is not — that divergence is the point. *)
  let finite = QCheck2.Gen.(map (fun (a, b) -> (float_of_int a /. 16., float_of_int b /. 16.)) (pair small_signed_int small_signed_int)) in
  QCheck2.Test.make ~name:"Order.float_pair orders like polymorphic compare" ~count:500
    QCheck2.Gen.(list finite)
    (fun l -> List.sort Order.float_pair l = List.sort compare l)

let test_order_float_pair_total_on_nan () =
  (* Polymorphic compare is inconsistent on NaN; Float.compare puts it
     first. The comparator must stay a total order. *)
  let l = [ (Float.nan, 1.0); (0.0, Float.nan); (0.0, 0.0); (Float.nan, Float.nan) ] in
  let sorted = List.sort Order.float_pair l in
  Alcotest.(check int) "same length" (List.length l) (List.length sorted);
  let s2 = List.sort Order.float_pair (List.rev l) in
  Alcotest.(check bool) "order independent of input permutation" true
    (List.for_all2 (fun (a, b) (c, d) -> Order.float_pair (a, b) (c, d) = 0) sorted s2)

let test_order_by () =
  let cmp = Order.by String.length Int.compare in
  Alcotest.(check bool) "projects before comparing" true (cmp "ab" "xyz" < 0);
  Alcotest.(check int) "equal projections tie" 0 (cmp "ab" "cd")

(* --------------------------------------------------------------------- *)

let () =
  Alcotest.run "cq_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "float in [0,1)" `Quick test_rng_float_range;
          Alcotest.test_case "int in bound" `Quick test_rng_int_range;
          Alcotest.test_case "bad bound rejected" `Quick test_rng_int_rejects_bad_bound;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "coarse uniformity" `Slow test_rng_uniformity_coarse;
        ] );
      ( "dist",
        [
          Alcotest.test_case "uniform bounds" `Quick test_uniform_bounds;
          Alcotest.test_case "normal moments" `Slow test_normal_moments;
          Alcotest.test_case "clamped normal" `Quick test_normal_clamped;
          Alcotest.test_case "zipf weights" `Quick test_zipf_weights_normalised;
          Alcotest.test_case "zipf frequencies" `Slow test_zipf_rank_frequencies;
          Alcotest.test_case "exponential" `Slow test_exponential_positive_mean;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "percentile edges" `Quick test_stats_percentile_edges;
          Alcotest.test_case "geometric mean edge cases" `Quick test_stats_geometric_mean_zero;
        ] );
      ( "vec",
        [
          Alcotest.test_case "push/get" `Quick test_vec_push_get;
          Alcotest.test_case "pop LIFO" `Quick test_vec_pop_lifo;
          Alcotest.test_case "swap_remove" `Quick test_vec_swap_remove;
          Alcotest.test_case "bounds errors" `Quick test_vec_bounds;
          Alcotest.test_case "sort/fold/exists" `Quick test_vec_sort_fold;
          QCheck_alcotest.to_alcotest prop_vec_models_list;
          QCheck_alcotest.to_alcotest prop_vec_growth_capacity_edges;
          QCheck_alcotest.to_alcotest prop_vec_clear_reuse;
          QCheck_alcotest.to_alcotest prop_vec_iteration_order;
          QCheck_alcotest.to_alcotest prop_vec_mixed_ops_model;
        ] );
      ( "order",
        [
          QCheck_alcotest.to_alcotest prop_order_int_pair_matches_poly;
          QCheck_alcotest.to_alcotest prop_order_float_pair_matches_poly;
          Alcotest.test_case "total on NaN" `Quick test_order_float_pair_total_on_nan;
          Alcotest.test_case "by projection" `Quick test_order_by;
        ] );
    ]
