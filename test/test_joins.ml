(* The golden tests of the repository: every band-join strategy and
   every select-join strategy must produce exactly the same result set
   as a brute-force oracle, on randomized workloads, including under
   query insertions/deletions between events. *)

module I = Cq_interval.Interval
module Table = Cq_relation.Table
module Tuple = Cq_relation.Tuple
module BQ = Cq_joins.Band_query
module BJ = Cq_joins.Band_join
module SQ = Cq_joins.Select_query
module SJ = Cq_joins.Select_join

(* Small discrete domains so equality joins hit and band windows
   overlap heavily. *)
let fgen hi = QCheck2.Gen.(map float_of_int (int_bound hi))

let interval_gen hi =
  QCheck2.Gen.(
    map2 (fun a b -> if a <= b then I.make a b else I.make b a) (fgen hi) (fgen hi))

let s_tuples_gen =
  QCheck2.Gen.(
    list_size (int_range 0 120)
      (map2 (fun b c -> (b, c)) (fgen 10) (fgen 20)))

let r_events_gen =
  QCheck2.Gen.(list_size (int_range 1 12) (map2 (fun a b -> (a, b)) (fgen 20) (fgen 10)))

let make_s_table tuples =
  let arr =
    Array.of_list (List.mapi (fun sid (b, c) -> { Tuple.sid; b; c }) tuples)
  in
  (Table.of_s_tuples arr, arr)

let make_r_events evs = List.mapi (fun rid (a, b) -> { Tuple.rid = 1000 + rid; a; b }) evs

(* ------------------------------- Band joins --------------------------- *)

(* Sorted (qid, sid) pairs a strategy emits for one event. *)
let band_results (type s) (module S : BJ.STRATEGY with type t = s) (st : s) r =
  let acc = ref [] in
  S.process_r st r (fun q s -> acc := (q.BQ.qid, s.Tuple.sid) :: !acc);
  List.sort compare !acc

let band_strategies :
    (module BJ.STRATEGY) list =
  [
    (module BJ.Qouter);
    (module BJ.Douter);
    (module BJ.Merge);
    (module BJ.Ssi);
    (module BJ.Ssi_dynamic);
    (module BJ.Hotspot);
    (module BJ.Shared);
  ]

let band_case_gen =
  QCheck2.Gen.(
    triple s_tuples_gen (list_size (int_range 0 60) (interval_gen 10)) r_events_gen)

let prop_band_strategies_agree =
  QCheck2.Test.make ~name:"band joins: all strategies match brute force" ~count:150
    band_case_gen (fun (s_tuples, ranges, events) ->
      let table, _ = make_s_table s_tuples in
      (* Band windows are differences S.B - R.B in [-10, 10]. *)
      let queries = BQ.of_ranges (Array.of_list (List.map (fun iv -> I.shift iv (-5.0)) ranges)) in
      let events = make_r_events events in
      List.for_all
        (fun (module S : BJ.STRATEGY) ->
          let st = S.create table queries in
          List.for_all
            (fun r ->
              let got = band_results (module S) st r in
              let want = BJ.reference table queries r in
              if got <> want then
                QCheck2.Test.fail_reportf "%s diverges on event b=%g: got %d, want %d pairs"
                  S.name r.Tuple.b (List.length got) (List.length want)
              else true)
            events)
        band_strategies)

let prop_band_dynamic_updates =
  QCheck2.Test.make ~name:"band joins: equivalence under query churn" ~count:80
    QCheck2.Gen.(
      quad s_tuples_gen
        (list_size (int_range 1 40) (interval_gen 10))
        (list_size (int_range 1 30) (interval_gen 10))
        r_events_gen)
    (fun (s_tuples, initial, churn, events) ->
      let table, _ = make_s_table s_tuples in
      let initial = BQ.of_ranges (Array.of_list (List.map (fun iv -> I.shift iv (-5.0)) initial)) in
      let churn_qs =
        List.mapi
          (fun i iv -> BQ.make ~qid:(10_000 + i) ~range:(I.shift iv (-5.0)))
          churn
      in
      let events = make_r_events events in
      List.for_all
        (fun (module S : BJ.STRATEGY) ->
          let st = S.create table initial in
          let live = ref (Array.to_list initial) in
          (* Interleave: add a churn query, process an event, delete an
             old query, process an event... *)
          let ops =
            List.concat
              (List.mapi (fun i q -> [ `Add q ] @ if i mod 2 = 0 then [ `Drop ] else []) churn_qs)
          in
          let events = ref events in
          let next_event () =
            match !events with
            | [] -> None
            | e :: rest ->
                events := rest;
                Some e
          in
          List.for_all
            (fun op ->
              (match op with
              | `Add q ->
                  S.insert_query st q;
                  live := q :: !live
              | `Drop -> (
                  match !live with
                  | [] -> ()
                  | q :: rest ->
                      if not (S.delete_query st q) then
                        QCheck2.Test.fail_reportf "%s: delete_query failed" S.name;
                      live := rest));
              match next_event () with
              | None -> true
              | Some r ->
                  let got = band_results (module S) st r in
                  let want = BJ.reference table (Array.of_list !live) r in
                  got = want
                  || QCheck2.Test.fail_reportf "%s diverges after churn" S.name)
            ops)
        band_strategies)

(* Identification-only (STEP 1) must report exactly the distinct
   queries having at least one result — once each. *)
let prop_band_affected_matches =
  QCheck2.Test.make ~name:"band joins: affected = distinct queries of reference" ~count:120
    band_case_gen (fun (s_tuples, ranges, events) ->
      let table, _ = make_s_table s_tuples in
      let queries = BQ.of_ranges (Array.of_list (List.map (fun iv -> I.shift iv (-5.0)) ranges)) in
      let events = make_r_events events in
      List.for_all
        (fun (module S : BJ.STRATEGY) ->
          let st = S.create table queries in
          List.for_all
            (fun r ->
              let got = ref [] in
              S.affected st r (fun q -> got := q.BQ.qid :: !got);
              let sorted = List.sort compare !got in
              let want =
                BJ.reference table queries r |> List.map fst |> List.sort_uniq compare
              in
              (if sorted <> List.sort_uniq compare sorted then
                 QCheck2.Test.fail_reportf "%s reported a query twice" S.name);
              sorted = want
              || QCheck2.Test.fail_reportf "%s affected diverges: got %d, want %d" S.name
                   (List.length sorted) (List.length want))
            events)
        band_strategies)

let test_band_empty_table () =
  let table = Table.create_s () in
  let queries = BQ.of_ranges [| I.make (-1.0) 1.0 |] in
  List.iter
    (fun (module S : BJ.STRATEGY) ->
      let st = S.create table queries in
      let got = band_results (module S) st { Tuple.rid = 0; a = 0.0; b = 5.0 } in
      Alcotest.(check (list (pair int int))) (S.name ^ " empty S") [] got)
    band_strategies

let test_band_no_queries () =
  let table, _ = make_s_table [ (1.0, 2.0); (3.0, 4.0) ] in
  List.iter
    (fun (module S : BJ.STRATEGY) ->
      let st = S.create table [||] in
      let got = band_results (module S) st { Tuple.rid = 0; a = 0.0; b = 2.0 } in
      Alcotest.(check (list (pair int int))) (S.name ^ " no queries") [] got)
    band_strategies

let test_band_exact_match_duplicates () =
  (* Several S tuples exactly at the stabbing point offset: the exact-
     match path must emit each duplicate exactly once per query. *)
  let table, _ = make_s_table [ (5.0, 0.0); (5.0, 1.0); (5.0, 2.0); (7.0, 0.0) ] in
  let queries =
    BQ.of_ranges [| I.make 0.0 0.0; I.make (-1.0) 2.0; I.make 0.0 3.0 |]
  in
  let r = { Tuple.rid = 0; a = 0.0; b = 5.0 } in
  let want = BJ.reference table queries r in
  List.iter
    (fun (module S : BJ.STRATEGY) ->
      let st = S.create table queries in
      Alcotest.(check (list (pair int int))) S.name want (band_results (module S) st r))
    band_strategies

(* ----------------------------- Select joins --------------------------- *)

let select_results (type s) (module S : SJ.STRATEGY with type t = s) (st : s) r =
  let acc = ref [] in
  S.process_r st r (fun q s -> acc := (q.SQ.qid, s.Tuple.sid) :: !acc);
  List.sort compare !acc

let select_strategies : (module SJ.STRATEGY) list =
  [
    (module SJ.Naive);
    (module SJ.Join_first);
    (module SJ.Select_first);
    (module SJ.Ssi);
    (module SJ.Hotspot);
    (module SJ.Adaptive);
  ]

let select_queries_gen =
  QCheck2.Gen.(list_size (int_range 0 60) (pair (interval_gen 20) (interval_gen 20)))

let prop_select_strategies_agree =
  QCheck2.Test.make ~name:"select joins: all strategies match brute force" ~count:150
    QCheck2.Gen.(triple s_tuples_gen select_queries_gen r_events_gen)
    (fun (s_tuples, ranges, events) ->
      let table, _ = make_s_table s_tuples in
      let queries = SQ.of_ranges (Array.of_list ranges) in
      let events = make_r_events events in
      List.for_all
        (fun (module S : SJ.STRATEGY) ->
          let st = S.create table queries in
          List.for_all
            (fun r ->
              let got = select_results (module S) st r in
              let want = SJ.reference table queries r in
              got = want
              || QCheck2.Test.fail_reportf "%s diverges: got %d, want %d pairs" S.name
                   (List.length got) (List.length want))
            events)
        select_strategies)

let prop_select_dynamic_updates =
  QCheck2.Test.make ~name:"select joins: equivalence under query churn" ~count:80
    QCheck2.Gen.(
      quad s_tuples_gen select_queries_gen
        (list_size (int_range 1 25) (pair (interval_gen 20) (interval_gen 20)))
        r_events_gen)
    (fun (s_tuples, initial, churn, events) ->
      let table, _ = make_s_table s_tuples in
      let initial = SQ.of_ranges (Array.of_list initial) in
      let churn_qs =
        List.mapi (fun i (ra, rc) -> SQ.make ~qid:(10_000 + i) ~range_a:ra ~range_c:rc) churn
      in
      List.for_all
        (fun (module S : SJ.STRATEGY) ->
          let st = S.create table initial in
          let live = ref (Array.to_list initial) in
          let events = ref events in
          let next_event () =
            match !events with
            | [] -> None
            | e :: rest ->
                events := rest;
                Some e
          in
          List.for_all
            (fun q ->
              S.insert_query st q;
              live := q :: !live;
              (match !live with
              | a :: b :: rest when q.SQ.qid mod 2 = 0 ->
                  if not (S.delete_query st b) then
                    QCheck2.Test.fail_reportf "%s: delete_query failed" S.name;
                  live := a :: rest
              | _ -> ());
              match next_event () with
              | None -> true
              | Some (a, b) ->
                  let r = { Tuple.rid = 0; a; b } in
                  let got = select_results (module S) st r in
                  let want = SJ.reference table (Array.of_list !live) r in
                  got = want || QCheck2.Test.fail_reportf "%s diverges after churn" S.name)
            churn_qs)
        select_strategies)

let prop_select_affected_matches =
  QCheck2.Test.make ~name:"select joins: affected = distinct queries of reference" ~count:120
    QCheck2.Gen.(triple s_tuples_gen select_queries_gen r_events_gen)
    (fun (s_tuples, ranges, events) ->
      let table, _ = make_s_table s_tuples in
      let queries = SQ.of_ranges (Array.of_list ranges) in
      let events = make_r_events events in
      List.for_all
        (fun (module S : SJ.STRATEGY) ->
          let st = S.create table queries in
          List.for_all
            (fun r ->
              let got = ref [] in
              S.affected st r (fun q -> got := q.SQ.qid :: !got);
              let sorted = List.sort compare !got in
              let want =
                SJ.reference table queries r |> List.map fst |> List.sort_uniq compare
              in
              (if sorted <> List.sort_uniq compare sorted then
                 QCheck2.Test.fail_reportf "%s reported a query twice" S.name);
              sorted = want
              || QCheck2.Test.fail_reportf "%s affected diverges" S.name)
            events)
        select_strategies)

let test_select_no_join_partner () =
  (* Event B value that exists in no S tuple: every strategy must
     return nothing. *)
  let table, _ = make_s_table [ (1.0, 5.0); (2.0, 6.0) ] in
  let queries =
    SQ.of_ranges [| (I.make 0.0 20.0, I.make 0.0 20.0) |]
  in
  let r = { Tuple.rid = 0; a = 10.0; b = 9.0 } in
  List.iter
    (fun (module S : SJ.STRATEGY) ->
      let st = S.create table queries in
      Alcotest.(check (list (pair int int))) S.name [] (select_results (module S) st r))
    select_strategies

let test_select_gap_between_anchors () =
  (* Queries whose rangeC falls strictly inside the gap between two
     adjacent joining C values must NOT be reported (the paper's
     footnote on queries in the (q1, q2) gap). *)
  let table, _ = make_s_table [ (5.0, 2.0); (5.0, 10.0) ] in
  let queries =
    SQ.of_ranges
      [|
        (I.make 0.0 20.0, I.make 4.0 6.0) (* C range inside the gap (2,10) *);
        (I.make 0.0 20.0, I.make 1.0 5.0) (* catches C=2 *);
      |]
  in
  let r = { Tuple.rid = 0; a = 3.0; b = 5.0 } in
  let want = [ (1, 0) ] in
  List.iter
    (fun (module S : SJ.STRATEGY) ->
      let st = S.create table queries in
      Alcotest.(check (list (pair int int))) S.name want (select_results (module S) st r))
    select_strategies

let test_select_rect_contains_anchor_line () =
  (* Exact stabbing-point coincidence: S tuple exactly at (b, pj). *)
  let table, _ = make_s_table [ (5.0, 7.0); (5.0, 7.0); (5.0, 8.0) ] in
  let queries = SQ.of_ranges [| (I.make 0.0 10.0, I.make 7.0 7.0) |] in
  let r = { Tuple.rid = 0; a = 4.0; b = 5.0 } in
  let want = SJ.reference table queries r in
  Alcotest.(check int) "duplicate anchors both reported" 2 (List.length want);
  List.iter
    (fun (module S : SJ.STRATEGY) ->
      let st = S.create table queries in
      Alcotest.(check (list (pair int int))) S.name want (select_results (module S) st r))
    select_strategies


let test_adaptive_routes_both_ways () =
  (* Narrow rangeA selections (tiny n') route to SJ-S; broad ones to
     SJ-SSI. *)
  let table, _ = make_s_table (List.init 50 (fun i -> (float_of_int (i mod 10), float_of_int i))) in
  let narrow =
    SQ.of_ranges (Array.init 40 (fun i -> (I.make (float_of_int i) (float_of_int i), I.make 0.0 50.0)))
  in
  let st = SJ.Adaptive.create table narrow in
  Alcotest.(check bool) "narrow -> select-first" true
    (SJ.Adaptive.choose st { Tuple.rid = 0; a = 3.0; b = 1.0 } = SJ.Adaptive.Use_select_first);
  let broad =
    SQ.of_ranges
      (Array.init 40 (fun i ->
           (I.make 0.0 50.0, I.make (float_of_int i) (float_of_int (i + 1)))))
  in
  let st = SJ.Adaptive.create table broad in
  Alcotest.(check bool) "broad -> ssi" true
    (SJ.Adaptive.choose st { Tuple.rid = 0; a = 3.0; b = 1.0 } = SJ.Adaptive.Use_ssi);
  ignore (SJ.Adaptive.affected st { Tuple.rid = 0; a = 3.0; b = 1.0 } (fun _ -> ()));
  let sf, ssi = SJ.Adaptive.decisions st in
  Alcotest.(check (pair int int)) "decision counters" (0, 1) (sf, ssi)


(* ----------------------- 2-D bidirectional SSI ------------------------- *)

module SJ2 = Cq_joins.Select_join2d

let make_r_table tuples =
  Table.of_r_tuples (Array.of_list (List.mapi (fun rid (a, b) -> { Tuple.rid; a; b }) tuples))

let prop_ssi2d_r_events_match =
  QCheck2.Test.make ~name:"2d ssi: R events match brute force" ~count:120
    QCheck2.Gen.(triple s_tuples_gen select_queries_gen r_events_gen)
    (fun (s_tuples, ranges, events) ->
      let table, _ = make_s_table s_tuples in
      let r_table = Table.create_r () in
      let queries = SQ.of_ranges (Array.of_list ranges) in
      let st = SJ2.create table r_table queries in
      List.for_all
        (fun r ->
          let got = ref [] in
          SJ2.process_r st r (fun q s -> got := (q.SQ.qid, s.Tuple.sid) :: !got);
          List.sort compare !got = SJ.reference table queries r)
        (make_r_events events))

let prop_ssi2d_s_events_match =
  QCheck2.Test.make ~name:"2d ssi: S events match brute force" ~count:120
    QCheck2.Gen.(triple
                   (list_size (int_range 0 100) (pair (fgen 20) (fgen 10)))
                   select_queries_gen
                   (list_size (int_range 1 10) (pair (fgen 10) (fgen 20))))
    (fun (r_tuples, ranges, s_events) ->
      let s_table = Table.create_s () in
      let r_table = make_r_table r_tuples in
      let queries = SQ.of_ranges (Array.of_list ranges) in
      let st = SJ2.create s_table r_table queries in
      List.for_all
        (fun (b, c) ->
          let s = { Tuple.sid = 999; b; c } in
          let got = ref [] in
          SJ2.process_s st s (fun q r -> got := (q.SQ.qid, r.Tuple.rid) :: !got);
          List.sort compare !got = SJ2.reference_s r_table queries s)
        s_events)

let test_ssi2d_churn_and_groups () =
  let table, _ = make_s_table [ (1.0, 5.0); (1.0, 15.0) ] in
  let r_table = make_r_table [ (5.0, 1.0); (12.0, 1.0) ] in
  let q0 = SQ.make ~qid:0 ~range_a:(I.make 0.0 10.0) ~range_c:(I.make 0.0 10.0) in
  let q1 = SQ.make ~qid:1 ~range_a:(I.make 8.0 20.0) ~range_c:(I.make 10.0 20.0) in
  let st = SJ2.create table r_table [| q0 |] in
  Alcotest.(check int) "one group" 1 (SJ2.num_groups st);
  SJ2.insert_query st q1;
  Alcotest.(check int) "two queries" 2 (SJ2.query_count st);
  (* Both directions after churn. *)
  let got_r = ref [] in
  SJ2.process_r st { Tuple.rid = 9; a = 9.0; b = 1.0 }
    (fun q s -> got_r := (q.SQ.qid, s.Tuple.sid) :: !got_r);
  Alcotest.(check (list (pair int int))) "r event" [ (0, 0); (1, 1) ]
    (List.sort compare !got_r);
  let got_s = ref [] in
  SJ2.process_s st { Tuple.sid = 9; b = 1.0; c = 12.0 }
    (fun q r -> got_s := (q.SQ.qid, r.Tuple.rid) :: !got_s);
  Alcotest.(check (list (pair int int))) "s event" [ (1, 1) ] (List.sort compare !got_s);
  Alcotest.(check bool) "delete" true (SJ2.delete_query st q0);
  Alcotest.(check int) "one query left" 1 (SJ2.query_count st)

(* ---------------------------- Composite joins -------------------------- *)

module CQ = Cq_joins.Composite_query
module CJ = Cq_joins.Composite_join

let composite_results (type s) (module S : CJ.STRATEGY with type t = s) (st : s) r =
  let acc = ref [] in
  S.process_r st r (fun q s -> acc := (q.CQ.qid, s.Tuple.sid) :: !acc);
  List.sort compare !acc

let composite_strategies : (module CJ.STRATEGY) list =
  [ (module CJ.Naive); (module CJ.Afirst); (module CJ.Ssi); (module CJ.Hotspot) ]

let composite_gen =
  QCheck2.Gen.(
    triple s_tuples_gen
      (list_size (int_range 0 40)
         (triple (interval_gen 10) (interval_gen 20) (interval_gen 20)))
      r_events_gen)

let make_composites specs =
  Array.of_list
    (List.mapi
       (fun qid (band, ra, rc) ->
         CQ.make ~qid ~band:(I.shift band (-5.0)) ~range_a:ra ~range_c:rc)
       specs)

let prop_composite_strategies_agree =
  QCheck2.Test.make ~name:"composite joins: all strategies match brute force" ~count:150
    composite_gen (fun (s_tuples, specs, events) ->
      let table, _ = make_s_table s_tuples in
      let queries = make_composites specs in
      let events = make_r_events events in
      List.for_all
        (fun (module S : CJ.STRATEGY) ->
          let st = S.create table queries in
          List.for_all
            (fun r ->
              let got = composite_results (module S) st r in
              let want = CJ.reference table queries r in
              got = want
              || QCheck2.Test.fail_reportf "%s diverges: got %d, want %d" S.name
                   (List.length got) (List.length want))
            events)
        composite_strategies)

let prop_composite_affected =
  QCheck2.Test.make ~name:"composite joins: affected = distinct queries" ~count:120
    composite_gen (fun (s_tuples, specs, events) ->
      let table, _ = make_s_table s_tuples in
      let queries = make_composites specs in
      let events = make_r_events events in
      List.for_all
        (fun (module S : CJ.STRATEGY) ->
          let st = S.create table queries in
          List.for_all
            (fun r ->
              let got = ref [] in
              S.affected st r (fun q -> got := q.CQ.qid :: !got);
              let want =
                CJ.reference table queries r |> List.map fst |> List.sort_uniq compare
              in
              List.sort compare !got = want)
            events)
        composite_strategies)

let test_composite_churn () =
  let table, _ = make_s_table [ (1.0, 5.0); (3.0, 12.0); (5.0, 5.0) ] in
  let q0 = CQ.make ~qid:0 ~band:(I.make (-2.0) 2.0) ~range_a:(I.make 0.0 10.0) ~range_c:(I.make 0.0 10.0) in
  let q1 = CQ.make ~qid:1 ~band:(I.make (-1.0) 1.0) ~range_a:(I.make 5.0 15.0) ~range_c:(I.make 10.0 20.0) in
  List.iter
    (fun (module S : CJ.STRATEGY) ->
      let st = S.create table [| q0 |] in
      S.insert_query st q1;
      let r = { Tuple.rid = 0; a = 7.0; b = 3.0 } in
      let want = CJ.reference table [| q0; q1 |] r in
      Alcotest.(check (list (pair int int))) (S.name ^ " after insert") want
        (composite_results (module S) st r);
      Alcotest.(check bool) (S.name ^ " delete") true (S.delete_query st q0);
      let want = CJ.reference table [| q1 |] r in
      Alcotest.(check (list (pair int int))) (S.name ^ " after delete") want
        (composite_results (module S) st r);
      Alcotest.(check int) (S.name ^ " count") 1 (S.query_count st))
    composite_strategies

(* ----------------------- Pluggable stabbing backends ------------------- *)

(* Every strategy × backend combination out of the shared processor
   core must produce the exact result stream of the brute-force oracle
   (hence streams identical across backends), including under churn. *)

let strategies = [ Hotspot_core.Processor.Hotspot; Hotspot_core.Processor.Ssi ]
let backends = Cq_index.Stab_backend.all

let prop_band_backends_equivalent =
  QCheck2.Test.make ~name:"band processors: identical streams across backends" ~count:100
    band_case_gen (fun (s_tuples, ranges, events) ->
      let table, _ = make_s_table s_tuples in
      let queries = BQ.of_ranges (Array.of_list (List.map (fun iv -> I.shift iv (-5.0)) ranges)) in
      let events = make_r_events events in
      List.for_all
        (fun strategy ->
          List.for_all
            (fun kind ->
              let (module P : BJ.PROCESSOR) = BJ.processor strategy kind in
              let st = P.create_cfg ~alpha:0.3 ~seed:42 table queries in
              List.for_all
                (fun r ->
                  let acc = ref [] in
                  P.process_r st r (fun q s -> acc := (q.BQ.qid, s.Tuple.sid) :: !acc);
                  List.sort compare !acc = BJ.reference table queries r
                  || QCheck2.Test.fail_reportf "%s/%s diverges from the oracle" P.name
                       (Cq_index.Stab_backend.to_string kind))
                events)
            backends)
        strategies)

let prop_select_backends_equivalent =
  QCheck2.Test.make ~name:"select processors: identical streams across backends" ~count:100
    QCheck2.Gen.(triple s_tuples_gen select_queries_gen r_events_gen)
    (fun (s_tuples, ranges, events) ->
      let table, _ = make_s_table s_tuples in
      let queries = SQ.of_ranges (Array.of_list ranges) in
      let events = make_r_events events in
      List.for_all
        (fun strategy ->
          List.for_all
            (fun kind ->
              let (module P : SJ.PROCESSOR) = SJ.processor strategy kind in
              let st = P.create_cfg ~alpha:0.3 ~seed:42 table queries in
              List.for_all
                (fun r ->
                  let acc = ref [] in
                  P.process_r st r (fun q s -> acc := (q.SQ.qid, s.Tuple.sid) :: !acc);
                  List.sort compare !acc = SJ.reference table queries r
                  || QCheck2.Test.fail_reportf "%s/%s diverges from the oracle" P.name
                       (Cq_index.Stab_backend.to_string kind))
                events)
            backends)
        strategies)

let prop_composite_backends_equivalent =
  QCheck2.Test.make ~name:"composite processors: identical streams across backends"
    ~count:100 composite_gen (fun (s_tuples, specs, events) ->
      let table, _ = make_s_table s_tuples in
      let queries = make_composites specs in
      let events = make_r_events events in
      List.for_all
        (fun strategy ->
          List.for_all
            (fun kind ->
              let (module P : CJ.PROCESSOR) = CJ.processor strategy kind in
              let st = P.create_cfg ~alpha:0.3 ~seed:42 table queries in
              List.for_all
                (fun r ->
                  let acc = ref [] in
                  P.process_r st r (fun q s -> acc := (q.CQ.qid, s.Tuple.sid) :: !acc);
                  List.sort compare !acc = CJ.reference table queries r
                  || QCheck2.Test.fail_reportf "%s/%s diverges from the oracle" P.name
                       (Cq_index.Stab_backend.to_string kind))
                events)
            backends)
        strategies)

let prop_backends_churn_equivalent =
  (* Query churn exercises the backends' remove paths: delete every
     other query between events and re-check against the oracle. *)
  QCheck2.Test.make ~name:"band processors: backends agree under churn" ~count:60
    band_case_gen (fun (s_tuples, ranges, events) ->
      let table, _ = make_s_table s_tuples in
      let all = BQ.of_ranges (Array.of_list (List.map (fun iv -> I.shift iv (-5.0)) ranges)) in
      let keep, drop =
        let k = ref [] and d = ref [] in
        Array.iteri (fun i q -> if i mod 2 = 0 then k := q :: !k else d := q :: !d) all;
        (Array.of_list (List.rev !k), List.rev !d)
      in
      let events = make_r_events events in
      List.for_all
        (fun strategy ->
          List.for_all
            (fun kind ->
              let (module P : BJ.PROCESSOR) = BJ.processor strategy kind in
              let st = P.create_cfg ~alpha:0.3 ~seed:42 table all in
              List.iter
                (fun q ->
                  if not (P.delete_query st q) then
                    ignore (QCheck2.Test.fail_reportf "%s: delete_query failed" P.name))
                drop;
              P.check_invariants st;
              List.for_all
                (fun r ->
                  let acc = ref [] in
                  P.process_r st r (fun q s -> acc := (q.BQ.qid, s.Tuple.sid) :: !acc);
                  List.sort compare !acc = BJ.reference table keep r
                  || QCheck2.Test.fail_reportf "%s/%s diverges after churn" P.name
                       (Cq_index.Stab_backend.to_string kind))
                events)
            backends)
        strategies)

(* ---------------------------------------------------------------------- *)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "cq_joins"
    [
      ( "band",
        [
          qc prop_band_strategies_agree;
          qc prop_band_dynamic_updates;
          qc prop_band_affected_matches;
          Alcotest.test_case "empty S table" `Quick test_band_empty_table;
          Alcotest.test_case "no queries" `Quick test_band_no_queries;
          Alcotest.test_case "exact-match duplicates" `Quick test_band_exact_match_duplicates;
        ] );
      ( "select",
        [
          qc prop_select_strategies_agree;
          qc prop_select_dynamic_updates;
          qc prop_select_affected_matches;
          Alcotest.test_case "no join partner" `Quick test_select_no_join_partner;
          Alcotest.test_case "gap between anchors" `Quick test_select_gap_between_anchors;
          Alcotest.test_case "anchor duplicates" `Quick test_select_rect_contains_anchor_line;
          Alcotest.test_case "adaptive routing" `Quick test_adaptive_routes_both_ways;
        ] );
      ( "composite",
        [
          qc prop_composite_strategies_agree;
          qc prop_composite_affected;
          Alcotest.test_case "query churn" `Quick test_composite_churn;
        ] );
      ( "ssi2d",
        [
          qc prop_ssi2d_r_events_match;
          qc prop_ssi2d_s_events_match;
          Alcotest.test_case "churn + both directions" `Quick test_ssi2d_churn_and_groups;
        ] );
      ( "backends",
        [
          qc prop_band_backends_equivalent;
          qc prop_select_backends_equivalent;
          qc prop_composite_backends_equivalent;
          qc prop_backends_churn_equivalent;
        ] );
    ]
