(* End-to-end engine tests: symmetric R/S event processing against an
   incrementally maintained brute-force oracle, plus the Figure-2 Zipf
   coverage model. *)

module I = Cq_interval.Interval
module Engine = Cq_engine.Engine
module Zipf = Cq_engine.Zipf_model

let fgen hi = QCheck2.Gen.(map float_of_int (int_bound hi))

let interval_gen hi =
  QCheck2.Gen.(map2 (fun a b -> if a <= b then I.make a b else I.make b a) (fgen hi) (fgen hi))

type ev = InsR of float * float | InsS of float * float

let scenario_gen =
  QCheck2.Gen.(
    let* band_ranges = list_size (int_range 0 15) (interval_gen 10) in
    let* select_ranges = list_size (int_range 0 15) (pair (interval_gen 20) (interval_gen 20)) in
    let* events =
      list_size (int_range 1 40)
        (oneof
           [
             map2 (fun a b -> InsR (a, b)) (fgen 20) (fgen 10);
             map2 (fun b c -> InsS (b, c)) (fgen 10) (fgen 20);
           ])
    in
    return (band_ranges, select_ranges, events))

let prop_engine_matches_oracle =
  QCheck2.Test.make ~name:"engine: mixed R/S stream matches oracle" ~count:150 scenario_gen
    (fun (band_ranges, select_ranges, events) ->
      let eng = Engine.create ~alpha:0.3 () in
      (* Record every delivered result as (kind, query-index, rid, sid). *)
      let delivered = ref [] in
      List.iteri
        (fun i range ->
          ignore
            (Engine.subscribe_band eng ~range:(I.shift range (-5.0)) (fun r s ->
                 delivered := (`Band, i, r.Cq_relation.Tuple.rid, s.Cq_relation.Tuple.sid) :: !delivered)))
        band_ranges;
      List.iteri
        (fun i (range_a, range_c) ->
          ignore
            (Engine.subscribe_select eng ~range_a ~range_c (fun r s ->
                 delivered := (`Select, i, r.Cq_relation.Tuple.rid, s.Cq_relation.Tuple.sid) :: !delivered)))
        select_ranges;
      (* Oracle state. *)
      let rs = ref [] and ss = ref [] in
      let expected = ref [] in
      let band_match i range (rid, ra, rb) (sid, sb, _sc) =
        ignore ra;
        if I.stabs (I.shift range (-5.0)) (sb -. rb) then
          expected := (`Band, i, rid, sid) :: !expected
      in
      let select_match i (range_a, range_c) (rid, ra, rb) (sid, sb, sc) =
        if rb = sb && I.stabs range_a ra && I.stabs range_c sc then
          expected := (`Select, i, rid, sid) :: !expected
      in
      List.iter
        (fun ev ->
          match ev with
          | InsR (a, b) ->
              let r, _ = Engine.insert_r eng ~a ~b in
              let rt = (r.Cq_relation.Tuple.rid, a, b) in
              List.iter (fun st -> List.iteri (fun i rg -> band_match i rg rt st) band_ranges) !ss;
              List.iter
                (fun st -> List.iteri (fun i rg -> select_match i rg rt st) select_ranges)
                !ss;
              rs := rt :: !rs
          | InsS (b, c) ->
              let s, _ = Engine.insert_s eng ~b ~c in
              let st = (s.Cq_relation.Tuple.sid, b, c) in
              List.iter (fun rt -> List.iteri (fun i rg -> band_match i rg rt st) band_ranges) !rs;
              List.iter
                (fun rt -> List.iteri (fun i rg -> select_match i rg rt st) select_ranges)
                !rs;
              ss := st :: !ss)
        events;
      let norm l = List.sort compare l in
      norm !delivered = norm !expected
      || QCheck2.Test.fail_reportf "delivered %d, expected %d results"
           (List.length !delivered) (List.length !expected))

(* The engine's two sides are built from one `ingest`/`retract` path, so
   swapping the roles of R and S must be invisible: run a stream on engine
   A and its mirror image on engine B (R-inserts become S-inserts with
   a <-> c, band windows negated, select windows swapped) and demand the
   delivery multisets coincide under the mirror, for every strategy and
   stabbing backend. *)
let prop_engine_rs_symmetry =
  QCheck2.Test.make ~name:"engine: mirrored streams give mirrored deliveries" ~count:60
    scenario_gen
    (fun (band_ranges, select_ranges, events) ->
      List.for_all
        (fun strategy ->
          List.for_all
            (fun backend ->
              let ea = Engine.create ~alpha:0.3 ~backend ~strategy () in
              let eb = Engine.create ~alpha:0.3 ~backend ~strategy () in
              (* Deliveries keyed by attributes (ids differ across roles):
                 (kind, query, r.a, r.b, s.b, s.c) with B's read back through
                 the mirror. *)
              let da = ref [] and db = ref [] in
              let neg w = I.make (-.I.hi w) (-.I.lo w) in
              List.iteri
                (fun i range ->
                  let w = I.shift range (-5.0) in
                  ignore
                    (Engine.subscribe_band ea ~range:w (fun r s ->
                         da := (`Band, i, r.Cq_relation.Tuple.a, r.b, s.Cq_relation.Tuple.b, s.c) :: !da));
                  ignore
                    (Engine.subscribe_band eb ~range:(neg w) (fun r s ->
                         db := (`Band, i, s.Cq_relation.Tuple.c, s.b, r.Cq_relation.Tuple.b, r.a) :: !db)))
                band_ranges;
              List.iteri
                (fun i (range_a, range_c) ->
                  ignore
                    (Engine.subscribe_select ea ~range_a ~range_c (fun r s ->
                         da := (`Select, i, r.Cq_relation.Tuple.a, r.b, s.Cq_relation.Tuple.b, s.c) :: !da));
                  ignore
                    (Engine.subscribe_select eb ~range_a:range_c ~range_c:range_a (fun r s ->
                         db := (`Select, i, s.Cq_relation.Tuple.c, s.b, r.Cq_relation.Tuple.b, r.a) :: !db)))
                select_ranges;
              List.iter
                (fun ev ->
                  let ka, kb =
                    match ev with
                    | InsR (a, b) ->
                        let _, ka = Engine.insert_r ea ~a ~b in
                        let _, kb = Engine.insert_s eb ~b ~c:a in
                        (ka, kb)
                    | InsS (b, c) ->
                        let _, ka = Engine.insert_s ea ~b ~c in
                        let _, kb = Engine.insert_r eb ~a:c ~b in
                        (ka, kb)
                  in
                  if ka <> kb then
                    QCheck2.Test.fail_reportf "per-event counts differ: %d vs %d" ka kb)
                events;
              let norm l = List.sort compare l in
              norm !da = norm !db
              || QCheck2.Test.fail_reportf "asymmetry under %s/%s: %d vs %d deliveries"
                   (Hotspot_core.Processor.strategy_to_string strategy)
                   (Cq_index.Stab_backend.to_string backend)
                   (List.length !da) (List.length !db))
            Cq_index.Stab_backend.all)
        [ Hotspot_core.Processor.Hotspot; Hotspot_core.Processor.Ssi ])

let test_engine_unsubscribe () =
  let eng = Engine.create () in
  let hits = ref 0 in
  let sub = Engine.subscribe_band eng ~range:(I.make (-5.0) 5.0) (fun _ _ -> incr hits) in
  Engine.load_s eng [| (3.0, 1.0) |];
  ignore (Engine.insert_r eng ~a:0.0 ~b:2.0);
  Alcotest.(check int) "hit once" 1 !hits;
  Alcotest.(check bool) "unsubscribe" true (Engine.unsubscribe eng sub);
  Alcotest.(check bool) "double unsubscribe" false (Engine.unsubscribe eng sub);
  ignore (Engine.insert_r eng ~a:0.0 ~b:2.0);
  Alcotest.(check int) "no further hits" 1 !hits;
  Alcotest.(check int) "no band queries left" 0 (Engine.band_query_count eng)

let test_engine_load_does_not_fire () =
  let eng = Engine.create () in
  let hits = ref 0 in
  ignore (Engine.subscribe_band eng ~range:(I.make (-100.0) 100.0) (fun _ _ -> incr hits));
  Engine.load_s eng (Array.init 50 (fun i -> (float_of_int i, 0.0)));
  Engine.load_r eng (Array.init 50 (fun i -> (0.0, float_of_int i)));
  Alcotest.(check int) "loads are silent" 0 !hits;
  let st = Engine.stats eng in
  Alcotest.(check int) "r loaded" 50 st.Engine.r_size;
  Alcotest.(check int) "s loaded" 50 st.Engine.s_size

let test_engine_stats_accumulate () =
  let eng = Engine.create ~alpha:0.4 () in
  for i = 0 to 9 do
    ignore
      (Engine.subscribe_select eng
         ~range_a:(I.make 0.0 10.0)
         ~range_c:(I.make (float_of_int i) (float_of_int i +. 5.0))
         (fun _ _ -> ()))
  done;
  Engine.load_s eng [| (5.0, 3.0); (5.0, 8.0) |];
  let _, n = Engine.insert_r eng ~a:5.0 ~b:5.0 in
  let st = Engine.stats eng in
  Alcotest.(check int) "events" 1 st.Engine.events_processed;
  Alcotest.(check int) "results match per-event count" n st.Engine.results_delivered;
  Alcotest.(check bool) "some results" true (n > 0);
  (* 10 heavily overlapping rangeC's with alpha=0.4 form a hotspot. *)
  Alcotest.(check bool) "select hotspot exists" true (st.Engine.select_hotspots >= 1)


let test_engine_retractions () =
  let eng = Engine.create ~alpha:0.3 () in
  let results = ref [] and retracted = ref [] in
  ignore
    (Engine.subscribe_band eng
       ~on_retract:(fun r s ->
         retracted := (r.Cq_relation.Tuple.rid, s.Cq_relation.Tuple.sid) :: !retracted)
       ~range:(I.make (-2.0) 2.0)
       (fun r s -> results := (r.Cq_relation.Tuple.rid, s.Cq_relation.Tuple.sid) :: !results));
  let s1, _ = Engine.insert_s eng ~b:5.0 ~c:0.0 in
  let r1, k1 = Engine.insert_r eng ~a:0.0 ~b:4.0 in
  Alcotest.(check int) "one result" 1 k1;
  (* Deleting the R tuple retracts the pair it produced. *)
  (match Engine.delete_r eng r1 with
  | Some k -> Alcotest.(check int) "one retraction" 1 k
  | None -> Alcotest.fail "tuple should be present");
  Alcotest.(check (list (pair int int))) "retraction pair" !results !retracted;
  Alcotest.(check bool) "double delete" true (Engine.delete_r eng r1 = None);
  (* A later event no longer joins with the deleted tuple. *)
  let _, k2 = Engine.insert_s eng ~b:4.5 ~c:0.0 in
  Alcotest.(check int) "deleted R invisible" 0 k2;
  (* Deleting the S tuple retracts nothing (its partner is gone). *)
  match Engine.delete_s eng s1 with
  | Some k -> Alcotest.(check int) "no retractions left" 0 k
  | None -> Alcotest.fail "s tuple should be present"

let test_engine_select_retractions () =
  let eng = Engine.create () in
  let retracted = ref 0 in
  ignore
    (Engine.subscribe_select eng
       ~on_retract:(fun _ _ -> incr retracted)
       ~range_a:(I.make 0.0 10.0) ~range_c:(I.make 0.0 10.0)
       (fun _ _ -> ()));
  ignore (Engine.insert_r eng ~a:5.0 ~b:7.0);
  let s, k = Engine.insert_s eng ~b:7.0 ~c:3.0 in
  Alcotest.(check int) "one result" 1 k;
  ignore (Engine.delete_s eng s);
  Alcotest.(check int) "one retraction" 1 !retracted


let test_engine_preloaded_r_joins_s_events () =
  (* Tuples loaded into R must be visible to later S-side events via
     the mirrored-processing path. *)
  let eng = Engine.create () in
  ignore
    (Engine.subscribe_select eng ~range_a:(I.make 0.0 10.0) ~range_c:(I.make 0.0 10.0)
       (fun _ _ -> ()));
  ignore (Engine.subscribe_band eng ~range:(I.make (-1.0) 1.0) (fun _ _ -> ()));
  Engine.load_r eng [| (5.0, 7.0); (20.0, 7.0) (* A out of rangeA *) |];
  let _, k = Engine.insert_s eng ~b:7.0 ~c:5.0 in
  (* select: joins the first R tuple only; band: |7-7|=0 joins both. *)
  Alcotest.(check int) "select (1) + band (2)" 3 k


(* Mixed insert/delete stream with retraction tracking: the multiset of
   (query, pair) deliveries minus retractions must equal the live
   brute-force join at every point; we check the final state. *)
type dev = DInsR of float * float | DInsS of float * float | DDelR | DDelS

let churn_scenario_gen =
  QCheck2.Gen.(
    let* band_ranges = list_size (int_range 0 10) (interval_gen 10) in
    let* events =
      list_size (int_range 1 50)
        (frequency
           [
             (3, map2 (fun a b -> DInsR (a, b)) (fgen 20) (fgen 10));
             (3, map2 (fun b c -> DInsS (b, c)) (fgen 10) (fgen 20));
             (1, return DDelR);
             (1, return DDelS);
           ])
    in
    return (band_ranges, events))

let prop_engine_deletions_retract =
  QCheck2.Test.make ~name:"engine: net deliveries = live join under churn" ~count:120
    churn_scenario_gen (fun (band_ranges, events) ->
      let eng = Engine.create ~alpha:0.3 () in
      (* net.(i) holds the balance of deliveries - retractions per query. *)
      let net = Hashtbl.create 64 in
      let bump k d =
        Hashtbl.replace net k (d + Option.value ~default:0 (Hashtbl.find_opt net k))
      in
      List.iteri
        (fun i range ->
          ignore
            (Engine.subscribe_band eng
               ~on_retract:(fun r s ->
                 bump (i, r.Cq_relation.Tuple.rid, s.Cq_relation.Tuple.sid) (-1))
               ~range:(I.shift range (-5.0))
               (fun r s -> bump (i, r.Cq_relation.Tuple.rid, s.Cq_relation.Tuple.sid) 1)))
        band_ranges;
      let live_r = ref [] and live_s = ref [] in
      List.iter
        (fun ev ->
          match ev with
          | DInsR (a, b) ->
              let r, _ = Engine.insert_r eng ~a ~b in
              live_r := r :: !live_r
          | DInsS (b, c) ->
              let sx, _ = Engine.insert_s eng ~b ~c in
              live_s := sx :: !live_s
          | DDelR -> (
              match !live_r with
              | [] -> ()
              | r :: rest ->
                  (match Engine.delete_r eng r with
                  | Some _ -> live_r := rest
                  | None -> QCheck2.Test.fail_report "delete_r failed on live tuple"))
          | DDelS -> (
              match !live_s with
              | [] -> ()
              | sx :: rest ->
                  (match Engine.delete_s eng sx with
                  | Some _ -> live_s := rest
                  | None -> QCheck2.Test.fail_report "delete_s failed on live tuple")))
        events;
      (* Brute-force live join. *)
      let expected = Hashtbl.create 64 in
      List.iteri
        (fun i range ->
          let w = I.shift range (-5.0) in
          List.iter
            (fun (r : Cq_relation.Tuple.r) ->
              List.iter
                (fun (sx : Cq_relation.Tuple.s) ->
                  if I.stabs w (sx.b -. r.b) then
                    Hashtbl.replace expected (i, r.rid, sx.sid) 1)
                !live_s)
            !live_r)
        band_ranges;
      let ok = ref true in
      Hashtbl.iter
        (fun k d ->
          let want = Option.value ~default:0 (Hashtbl.find_opt expected k) in
          if d <> want then ok := false)
        net;
      Hashtbl.iter
        (fun k _ ->
          if Option.value ~default:0 (Hashtbl.find_opt net k) <> 1 then ok := false)
        expected;
      !ok)


let test_engine_isolates_failing_callback () =
  (* A raising subscriber must not starve its peers. *)
  let eng = Engine.create () in
  let good = ref 0 in
  ignore
    (Engine.subscribe_band eng ~range:(I.make (-1.0) 1.0) (fun _ _ -> failwith "boom"));
  ignore (Engine.subscribe_band eng ~range:(I.make (-1.0) 1.0) (fun _ _ -> incr good));
  Engine.load_s eng [| (5.0, 0.0) |];
  let _, k = Engine.insert_r eng ~a:0.0 ~b:5.0 in
  Alcotest.(check int) "both results delivered" 2 k;
  Alcotest.(check int) "good subscriber saw the result" 1 !good

(* ---------------------------- parallel engine -------------------------- *)

module Par = Cq_engine.Parallel

(* Replay one generated scenario through the sharded engine; deliveries
   surface at flush.  Single-row batches with a small batch_size stress
   the command protocol harder than big aligned batches would. *)
let run_parallel_scenario ~shards (band_ranges, select_ranges, events) =
  let t = Par.create ~alpha:0.3 ~shards ~batch_size:8 () in
  let delivered = ref [] in
  List.iteri
    (fun i range ->
      ignore
        (Par.subscribe_band t ~range:(I.shift range (-5.0)) (fun r s ->
             delivered :=
               (`Band, i, r.Cq_relation.Tuple.rid, s.Cq_relation.Tuple.sid) :: !delivered)))
    band_ranges;
  List.iteri
    (fun i (range_a, range_c) ->
      ignore
        (Par.subscribe_select t ~range_a ~range_c (fun r s ->
             delivered :=
               (`Select, i, r.Cq_relation.Tuple.rid, s.Cq_relation.Tuple.sid) :: !delivered)))
    select_ranges;
  List.iter
    (fun ev ->
      match ev with
      | InsR (a, b) -> Par.ingest_batch t Par.R [| (a, b) |]
      | InsS (b, c) -> Par.ingest_batch t Par.S [| (b, c) |])
    events;
  ignore (Par.flush t);
  Par.check_invariants t;
  Par.shutdown t;
  !delivered

(* The sequential engine delivers the same scenario inline; its rids and
   sids line up with the parallel engine's because both ingest the
   identical stream in order. *)
let run_sequential_scenario (band_ranges, select_ranges, events) =
  let eng = Engine.create ~alpha:0.3 () in
  let delivered = ref [] in
  List.iteri
    (fun i range ->
      ignore
        (Engine.subscribe_band eng ~range:(I.shift range (-5.0)) (fun r s ->
             delivered :=
               (`Band, i, r.Cq_relation.Tuple.rid, s.Cq_relation.Tuple.sid) :: !delivered)))
    band_ranges;
  List.iteri
    (fun i (range_a, range_c) ->
      ignore
        (Engine.subscribe_select eng ~range_a ~range_c (fun r s ->
             delivered :=
               (`Select, i, r.Cq_relation.Tuple.rid, s.Cq_relation.Tuple.sid) :: !delivered)))
    select_ranges;
  List.iter
    (fun ev ->
      match ev with
      | InsR (a, b) -> ignore (Engine.insert_r eng ~a ~b)
      | InsS (b, c) -> ignore (Engine.insert_s eng ~b ~c))
    events;
  !delivered

(* The flat-batch ingest path must deliver the identical result
   {e sequence} — same tuples, same rids/sids, same order — as a
   per-tuple insert loop over the same rows.  Consecutive same-side
   events coalesce into one batch each, so batches of many sizes (and
   singletons) are exercised. *)
let run_batched_scenario (band_ranges, select_ranges, events) =
  let eng = Engine.create ~alpha:0.3 () in
  let delivered = ref [] in
  List.iteri
    (fun i range ->
      ignore
        (Engine.subscribe_band eng ~range:(I.shift range (-5.0)) (fun r s ->
             delivered :=
               (`Band, i, r.Cq_relation.Tuple.rid, s.Cq_relation.Tuple.sid) :: !delivered)))
    band_ranges;
  List.iteri
    (fun i (range_a, range_c) ->
      ignore
        (Engine.subscribe_select eng ~range_a ~range_c (fun r s ->
             delivered :=
               (`Select, i, r.Cq_relation.Tuple.rid, s.Cq_relation.Tuple.sid) :: !delivered)))
    select_ranges;
  let module Batch = Cq_relation.Batch in
  let pending_side = ref `R and pending = ref [] in
  let flush_pending () =
    match !pending with
    | [] -> ()
    | rows ->
        let b = Batch.of_rows (Array.of_list (List.rev rows)) in
        ignore
          (match !pending_side with
          | `R -> Engine.ingest_batch_r eng b
          | `S -> Engine.ingest_batch_s eng b);
        pending := []
  in
  List.iter
    (fun ev ->
      let side, row = match ev with InsR (a, b) -> (`R, (a, b)) | InsS (b, c) -> (`S, (b, c)) in
      (match (!pending, !pending_side, side) with
      | _ :: _, `R, `S | _ :: _, `S, `R -> flush_pending ()
      | _ -> ());
      pending_side := side;
      pending := row :: !pending)
    events;
  flush_pending ();
  !delivered

let prop_batch_matches_per_tuple =
  QCheck2.Test.make ~name:"batch ingest: identical delivery sequence to per-tuple path"
    ~count:60 scenario_gen (fun scenario ->
      let base = run_sequential_scenario scenario in
      let got = run_batched_scenario scenario in
      got = base
      || QCheck2.Test.fail_reportf "batch path delivered %d results, per-tuple %d"
           (List.length got) (List.length base))

let prop_parallel_matches_sequential =
  QCheck2.Test.make ~name:"parallel: shards in {1,2,4} match the sequential multiset"
    ~count:40 scenario_gen (fun scenario ->
      let norm l = List.sort compare l in
      let base = norm (run_sequential_scenario scenario) in
      List.for_all
        (fun shards ->
          let got = norm (run_parallel_scenario ~shards scenario) in
          got = base
          || QCheck2.Test.fail_reportf "shards=%d delivered %d results, sequential %d" shards
               (List.length got) (List.length base))
        [ 1; 2; 4 ])

(* Elastic registration: deregistering a query at a flush barrier and
   immediately re-registering the same definition is a semantic no-op —
   delivery is driven by incoming events joining against the fully
   replicated tables, so the churned query must deliver exactly what a
   statically subscribed one does.  Exercises register/deregister's
   barrier discipline on a live, mid-stream engine. *)
let run_rereg_scenario ~shards ~churn_at (band_ranges, select_ranges, events) =
  let t = Par.create ~alpha:0.3 ~shards ~batch_size:8 () in
  let delivered = ref [] in
  let handle0 = ref None in
  let reg_band i range =
    let sub =
      Par.register t (Par.Band { range }) (fun r s ->
          delivered :=
            (`Band, i, r.Cq_relation.Tuple.rid, s.Cq_relation.Tuple.sid) :: !delivered)
    in
    if i = 0 then handle0 := Some (sub, range)
  in
  List.iteri (fun i range -> reg_band i (I.shift range (-5.0))) band_ranges;
  List.iteri
    (fun i (range_a, range_c) ->
      ignore
        (Par.register t (Par.Select { range_a; range_c }) (fun r s ->
             delivered :=
               (`Select, i, r.Cq_relation.Tuple.rid, s.Cq_relation.Tuple.sid) :: !delivered)))
    select_ranges;
  List.iteri
    (fun j ev ->
      (if j = churn_at then
         match !handle0 with
         | Some (sub, range) ->
             ignore (Par.deregister t sub);
             reg_band 0 range
         | None -> ());
      match ev with
      | InsR (a, b) -> Par.ingest_batch t Par.R [| (a, b) |]
      | InsS (b, c) -> Par.ingest_batch t Par.S [| (b, c) |])
    events;
  ignore (Par.flush t);
  Par.check_invariants t;
  Par.shutdown t;
  !delivered

let prop_rereg_matches_static =
  QCheck2.Test.make
    ~name:"elastic: register/deregister/re-register equals a fresh static engine" ~count:30
    QCheck2.Gen.(pair scenario_gen (int_bound 40))
    (fun (scenario, churn_at) ->
      let norm l = List.sort compare l in
      let base = norm (run_sequential_scenario scenario) in
      List.for_all
        (fun shards ->
          let got = norm (run_rereg_scenario ~shards ~churn_at scenario) in
          got = base
          || QCheck2.Test.fail_reportf "shards=%d churn@%d delivered %d results, static %d"
               shards churn_at (List.length got) (List.length base))
        [ 1; 3 ])

(* Migration under ingest: pile band queries onto strips 0 and 4 — the
   same home shard when [shards = 4] — alternate ingest with flushes so
   the armed rebalancer ([check_every = 1]) migrates strips while later
   batches are already in flight, and require both that migrations
   actually happened and that the delivered multiset still matches the
   1-shard run bit-for-bit. *)
let test_migration_under_ingest () =
  let shards = 4 in
  (* Strip 0 centre and strip [shards] centre: both round-robin to
     shard 0, so all six queries start on one shard. *)
  let centers = [ 64.0; 64.0 +. (float_of_int shards *. 128.0) ] in
  let queries = List.concat_map (fun c -> [ c; c; c ]) centers in
  let collect n_shards =
    let t =
      Par.create ~alpha:0.3 ~shards:n_shards ~batch_size:4
        ~rebalance:(Some { Cq_engine.Engine.Config.threshold = 1.2; check_every = 1 })
        ()
    in
    let delivered = ref [] in
    List.iteri
      (fun i c ->
        ignore
          (Par.register t
             (Par.Band { range = I.make (c -. 8.0) (c +. 8.0) })
             (fun r s ->
               delivered :=
                 (i, r.Cq_relation.Tuple.rid, s.Cq_relation.Tuple.sid) :: !delivered)))
      queries;
    for k = 0 to 11 do
      let u = float_of_int k in
      List.iter
        (fun c ->
          (* R row (u, u + c) has band value c; S row (u + c, c) joins
             it on b and stabs the selects' c axis. *)
          Par.ingest_batch t Par.R [| (u, u +. c) |];
          Par.ingest_batch t Par.S [| (u +. c, c) |])
        centers;
      if k mod 2 = 1 then ignore (Par.flush t)
    done;
    ignore (Par.flush t);
    Par.check_invariants t;
    let rb = Par.rebalance_stats t in
    Par.shutdown t;
    (List.sort compare !delivered, rb)
  in
  let seq_rs, _ = collect 1 in
  let par_rs, rb = collect shards in
  Alcotest.(check bool) "at least one migration fired" true (rb.Par.rb_migrations >= 1);
  Alcotest.(check bool) "migrated queries counted" true (rb.Par.rb_migrated_queries >= 1);
  Alcotest.(check int) "same result count" (List.length seq_rs) (List.length par_rs);
  Alcotest.(check bool) "same result multiset" true (seq_rs = par_rs)

let test_parallel_shutdown_discipline () =
  let t = Par.create ~shards:2 () in
  let hits = ref 0 in
  ignore (Par.subscribe_band t ~range:(I.make (-1.0) 1.0) (fun _ _ -> incr hits));
  Par.ingest_batch t Par.S [| (5.0, 0.0) |];
  Par.ingest_batch t Par.R [| (0.0, 5.0) |];
  (* shutdown flushes pending batches, so the result arrives even
     without an explicit flush... *)
  Par.shutdown t;
  Alcotest.(check int) "shutdown flushes" 1 !hits;
  (* ...is idempotent, and the engine rejects further use. *)
  Par.shutdown t;
  (match Par.try_ingest_batch t Par.R [| (0.0, 0.0) |] with
  | Error (Cq_util.Error.Invalid_parameter _) -> ()
  | Error e -> Alcotest.failf "unexpected error %s" (Cq_util.Error.to_string e)
  | Ok () -> Alcotest.fail "ingest after shutdown accepted")

(* Regression for the error-payload naming unification: every
   validation failure names the exact configuration field or tuple
   attribute, on both the sequential and parallel try_* paths. *)
let test_error_payload_field_names () =
  let param_name what = function
    | Error (Cq_util.Error.Invalid_parameter { name; _ }) ->
        Alcotest.(check string) what what name
    | Error e -> Alcotest.failf "%s: unexpected error %s" what (Cq_util.Error.to_string e)
    | Ok _ -> Alcotest.failf "%s: accepted" what
  in
  let finite_name what = function
    | Error (Cq_util.Error.Not_finite { name; _ }) -> Alcotest.(check string) what what name
    | Error e -> Alcotest.failf "%s: unexpected error %s" what (Cq_util.Error.to_string e)
    | Ok _ -> Alcotest.failf "%s: accepted" what
  in
  param_name "alpha" (Engine.try_create ~alpha:1.5 ());
  param_name "epsilon" (Engine.try_create ~epsilon:0.0 ());
  param_name "shards" (Engine.try_create ~shards:0 ());
  param_name "batch_size" (Engine.try_create ~batch_size:0 ());
  param_name "shards" (Par.try_create ~shards:(-1) ());
  param_name "batch_size" (Par.try_create ~batch_size:(-3) ());
  let eng = Engine.create () in
  finite_name "a" (Engine.try_load_r eng [| (Float.nan, 1.0) |]);
  finite_name "b" (Engine.try_load_r eng [| (1.0, Float.infinity) |]);
  finite_name "b" (Engine.try_load_s eng [| (Float.nan, 1.0) |]);
  finite_name "c" (Engine.try_load_s eng [| (1.0, Float.neg_infinity) |]);
  finite_name "a" (Engine.try_insert_r eng ~a:Float.nan ~b:1.0);
  finite_name "c" (Engine.try_insert_s eng ~b:1.0 ~c:Float.nan);
  Par.with_engine Engine.Config.default (fun t ->
      finite_name "a" (Par.try_ingest_batch t Par.R [| (Float.nan, 1.0) |]);
      finite_name "b" (Par.try_ingest_batch t Par.R [| (1.0, Float.nan) |]);
      finite_name "b" (Par.try_ingest_batch t Par.S [| (Float.nan, 1.0) |]);
      finite_name "c" (Par.try_ingest_batch t Par.S [| (1.0, Float.nan) |]))

(* --------------------------- bounded queue ----------------------------- *)

module BQ = Cq_engine.Bounded_queue

let test_bounded_queue_try_ops () =
  let q = BQ.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (BQ.try_push q 1);
  Alcotest.(check bool) "push 2" true (BQ.try_push q 2);
  Alcotest.(check bool) "full" false (BQ.try_push q 3);
  Alcotest.(check int) "length" 2 (BQ.length q);
  Alcotest.(check (option int)) "pop fifo" (Some 1) (BQ.try_pop q);
  Alcotest.(check bool) "space again" true (BQ.try_push q 4);
  Alcotest.(check (option int)) "pop 2" (Some 2) (BQ.try_pop q);
  Alcotest.(check (option int)) "pop 4" (Some 4) (BQ.try_pop q);
  Alcotest.(check (option int)) "empty" None (BQ.try_pop q)

let test_bounded_queue_push_timeout () =
  let q = BQ.create ~capacity:1 in
  Alcotest.(check bool) "fits immediately" true (BQ.push_timeout q 1 ~timeout_ns:1_000L);
  let t0 = Cq_util.Clock.monotonic_ns () in
  Alcotest.(check bool) "full queue times out" false
    (BQ.push_timeout q 2 ~timeout_ns:5_000_000L);
  let dt = Int64.sub (Cq_util.Clock.monotonic_ns ()) t0 in
  Alcotest.(check bool) "waited at least the window" true (dt >= 5_000_000L);
  (* A consumer freeing space lets a concurrent timed push through. *)
  let d = Domain.spawn (fun () -> BQ.push_timeout q 3 ~timeout_ns:2_000_000_000L) in
  ignore (BQ.pop q);
  Alcotest.(check bool) "succeeds once space frees" true (Domain.join d);
  Alcotest.(check (option int)) "drained" (Some 3) (BQ.try_pop q)

let test_bounded_queue_producer_consumer () =
  (* Live SPSC exercise under real contention: a tiny capacity forces
     both parties through their blocking paths many times, and FIFO
     order must survive — the engine relies on commands arriving at
     each shard in ingest order. *)
  let n = 5_000 in
  let q = BQ.create ~capacity:4 in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to n do
          BQ.push q i
        done)
  in
  let expected = ref 1 in
  let in_order = ref true in
  for _ = 1 to n do
    let v = BQ.pop q in
    if v <> !expected then in_order := false;
    incr expected
  done;
  Domain.join producer;
  Alcotest.(check bool) "strict FIFO across domains" true !in_order;
  Alcotest.(check (option int)) "nothing left over" None (BQ.try_pop q);
  Alcotest.(check int) "empty at rest" 0 (BQ.length q)

let test_bounded_queue_try_ops_concurrent () =
  (* Non-blocking variants under the same contention: the producer
     spins on [try_push], the consumer on [try_pop].  Everything
     pushed must come out exactly once, in order, and the occupancy
     the consumer observes can never exceed the capacity. *)
  (* Modest n: [cpu_relax] does not yield the core, so on a one-core
     box each spin burns a scheduler quantum before the peer runs. *)
  let n = 1_000 and cap = 3 in
  let q = BQ.create ~capacity:cap in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to n do
          while not (BQ.try_push q i) do
            Domain.cpu_relax ()
          done
        done)
  in
  let got = ref 0 and in_order = ref true and over_cap = ref false in
  while !got < n do
    if BQ.length q > cap then over_cap := true;
    match BQ.try_pop q with
    | None -> Domain.cpu_relax ()
    | Some v ->
        incr got;
        if v <> !got then in_order := false
  done;
  Domain.join producer;
  Alcotest.(check bool) "strict FIFO under try ops" true !in_order;
  Alcotest.(check bool) "occupancy never exceeds capacity" false !over_cap;
  Alcotest.(check (option int)) "drained" None (BQ.try_pop q)

(* Model check: any single-domain interleaving of try ops behaves as
   the textbook bounded FIFO (the concurrent tests above cover the
   cross-domain story; this one covers the full op surface, including
   rejected pushes leaving the queue untouched). *)
let prop_bounded_queue_matches_model =
  QCheck2.Test.make ~name:"bounded_queue: try ops match FIFO model" ~count:300
    QCheck2.Gen.(pair (int_range 1 5) (list_size (int_bound 200) (option (int_bound 1000))))
    (fun (cap, ops) ->
      let q = BQ.create ~capacity:cap in
      let model = Queue.create () in
      List.for_all
        (fun op ->
          match op with
          | Some v ->
              let accepted = BQ.try_push q v in
              let model_accepts = Queue.length model < cap in
              if model_accepts then Queue.add v model;
              accepted = model_accepts && BQ.length q = Queue.length model
          | None ->
              let got = BQ.try_pop q in
              let want = Queue.take_opt model in
              got = want && BQ.length q = Queue.length model)
        ops)

(* --------------------------- overload policies ------------------------- *)

let test_parallel_shutdown_with_inflight_batches () =
  (* A backlog bigger than the queue capacity, never flushed: shutdown
     must still deliver everything and join every domain (the Stop
     commands go through the bounded-wait push). *)
  let t = Par.create ~shards:4 ~batch_size:1 () in
  let hits = ref 0 in
  ignore (Par.subscribe_band t ~range:(I.make (-1.0) 1.0) (fun _ _ -> incr hits));
  Par.ingest_batch t Par.S (Array.init 50 (fun _ -> (0.0, 0.0)));
  Par.ingest_batch t Par.R (Array.init 50 (fun _ -> (0.0, 0.0)));
  Par.shutdown t;
  Alcotest.(check int) "all pairs delivered" 2500 !hits;
  (* Double shutdown is a no-op, not a crash. *)
  Par.shutdown t;
  match Par.try_ingest_batch t Par.R [| (0.0, 0.0) |] with
  | Error (Cq_util.Error.Invalid_parameter _) -> ()
  | Error e -> Alcotest.failf "unexpected error %s" (Cq_util.Error.to_string e)
  | Ok () -> Alcotest.fail "ingest after double shutdown accepted"

let test_reject_oversized_batch_not_retriable () =
  (* With batch_size 1, a 100-row batch needs 100 queue slots against a
     capacity of 64: it could never be admitted, so Reject must refuse
     it with a non-retriable Invalid_parameter — an Overload with its
     backoff hint would send the producer into a retry loop that can
     never succeed, even against idle queues. *)
  let t = Par.create ~shards:2 ~batch_size:1 ~overload:Engine.Config.Reject () in
  let hits = ref 0 in
  ignore (Par.subscribe_band t ~range:(I.make (-1.0) 1.0) (fun _ _ -> incr hits));
  (match Par.try_ingest_batch t Par.R (Array.make 100 (0.0, 0.0)) with
  | Error (Cq_util.Error.Invalid_parameter { name = "rows"; _ }) -> ()
  | Error e -> Alcotest.failf "unexpected error %s" (Cq_util.Error.to_string e)
  | Ok () -> Alcotest.fail "unsatisfiable batch accepted under Reject");
  (* All-or-nothing: the stream is untouched, small batches still flow. *)
  Par.ingest_batch t Par.S [| (0.0, 0.0) |];
  Par.ingest_batch t Par.R [| (0.0, 0.0) |];
  ignore (Par.flush t);
  Alcotest.(check int) "only the small batch's result" 1 !hits;
  Par.shutdown t

let test_reject_overload_payload () =
  (* Genuine transient pressure: make each row expensive to drain
     (every R row joins a preloaded 2000-row S table), then publish
     admissible 32-row batches back-to-back without flushing.  The
     producer outruns the shards, depth climbs past capacity - 32, and
     Reject answers with the typed Overload payload and backoff hint.
     The loop is timing-tolerant: any single Ok just means the shard
     drained in time, and the next batch piles on. *)
  let t = Par.create ~shards:2 ~batch_size:1 ~overload:Engine.Config.Reject () in
  ignore (Par.subscribe_band t ~range:(I.make (-1.0) 1.0) (fun _ _ -> ()));
  (* Preload in admissible batches, flushing each so admission never
     sees preload pressure (batch_size 1: a 2000-row batch would trip
     the oversized check). *)
  for _ = 1 to 63 do
    Par.ingest_batch t Par.S (Array.make 32 (0.0, 0.0));
    ignore (Par.flush t)
  done;
  let overloaded = ref None in
  let attempts = ref 0 in
  while !overloaded = None && !attempts < 500 do
    incr attempts;
    match Par.try_ingest_batch t Par.R (Array.make 32 (0.0, 0.0)) with
    | Ok () -> ()
    | Error (Cq_util.Error.Overload _ as e) -> overloaded := Some e
    | Error e -> Alcotest.failf "unexpected error %s" (Cq_util.Error.to_string e)
  done;
  (match !overloaded with
  | Some (Cq_util.Error.Overload { shard; queue_depth; retry_after_ms }) ->
      Alcotest.(check bool) "shard in range" true (shard >= 0 && shard < 2);
      Alcotest.(check bool) "depth reported" true (queue_depth >= 0 && queue_depth <= 64);
      Alcotest.(check bool) "retry hint positive" true (retry_after_ms > 0.0)
  | Some e -> Alcotest.failf "unexpected error %s" (Cq_util.Error.to_string e)
  | None -> Alcotest.fail "no Overload across 500 back-to-back admissible batches");
  ignore (Par.flush t);
  Par.shutdown t

(* Replay a scenario through a forced-rate Shed engine; periodic
   flushes keep queue depths far from the shed grace window so the only
   degradation is the deterministic coin. *)
let run_shed_scenario ~shards ~rate (band_ranges, select_ranges, events) =
  let t =
    Par.create ~alpha:0.3 ~shards ~batch_size:8 ~overload:Engine.Config.Shed
      ~shed_rate:rate ()
  in
  let delivered = ref [] in
  List.iteri
    (fun i range ->
      ignore
        (Par.subscribe_band t ~range:(I.shift range (-5.0)) (fun r s ->
             delivered :=
               (`Band, i, r.Cq_relation.Tuple.rid, s.Cq_relation.Tuple.sid) :: !delivered)))
    band_ranges;
  List.iteri
    (fun i (range_a, range_c) ->
      ignore
        (Par.subscribe_select t ~range_a ~range_c (fun r s ->
             delivered :=
               (`Select, i, r.Cq_relation.Tuple.rid, s.Cq_relation.Tuple.sid) :: !delivered)))
    select_ranges;
  List.iteri
    (fun i ev ->
      (match ev with
      | InsR (a, b) -> Par.ingest_batch t Par.R [| (a, b) |]
      | InsS (b, c) -> Par.ingest_batch t Par.S [| (b, c) |]);
      if i mod 16 = 15 then ignore (Par.flush t))
    events;
  ignore (Par.flush t);
  Par.check_invariants t;
  let info =
    List.map
      (fun (d : Engine.degraded) ->
        (d.deg_qid, d.deg_observed, d.deg_estimate, d.deg_claimed_error, d.deg_rate))
      (Par.shed_info t)
  in
  Par.shutdown t;
  (!delivered, info)

let prop_shed_decisions_shard_invariant =
  QCheck2.Test.make
    ~name:"shed: forced rate 0.5 sheds identically under shards 1 and 4" ~count:30
    scenario_gen (fun scenario ->
      let norm l = List.sort compare l in
      let d1, i1 = run_shed_scenario ~shards:1 ~rate:0.5 scenario in
      let d4, i4 = run_shed_scenario ~shards:4 ~rate:0.5 scenario in
      if norm d1 <> norm d4 then
        QCheck2.Test.fail_reportf "delivered multisets differ: %d vs %d results"
          (List.length d1) (List.length d4)
      else if i1 <> i4 then
        QCheck2.Test.fail_reportf
          "degraded reports differ (%d vs %d entries) — claimed bounds must be bitwise \
           shard-invariant"
          (List.length i1) (List.length i4)
      else true)

let prop_shed_rate_one_matches_block =
  QCheck2.Test.make ~name:"shed: forced rate 1.0 equals Block byte-for-byte" ~count:30
    scenario_gen (fun scenario ->
      let norm l = List.sort compare l in
      let base = norm (run_sequential_scenario scenario) in
      let d, info = run_shed_scenario ~shards:1 ~rate:1.0 scenario in
      if norm d <> base then
        QCheck2.Test.fail_reportf "rate-1.0 shed delivered %d results, exact run %d"
          (List.length d) (List.length base)
      else if info <> [] then
        QCheck2.Test.fail_reportf "%d degraded reports under rate 1.0" (List.length info)
      else true)

let test_shed_exact_phase_folds_into_estimate () =
  (* Regression for the adaptive-rate hole: results delivered while the
     rate sat at 1.0 must fold into the Horvitz-Thompson estimate at
     p = 1, otherwise a rate-1.0 phase followed by a shedding one
     leaves the exact-phase results out of the estimate while the
     claimed bound only covers the shedding phase's sampling error. *)
  let eng = Engine.create ~alpha:0.1 ~seed:42 ~overload:Engine.Config.Shed () in
  let delivered = ref 0 in
  ignore (Engine.subscribe_band eng ~range:(I.make (-1000.0) 1000.0) (fun _ _ -> incr delivered));
  (* Exact phase: rate 1.0 (the Shed default), 50 x 70 = 3500 pairs. *)
  for i = 1 to 50 do
    ignore (Engine.insert_s eng ~b:(float_of_int i) ~c:0.0)
  done;
  for i = 1 to 70 do
    ignore (Engine.insert_r eng ~a:0.0 ~b:(float_of_int i))
  done;
  Alcotest.(check int) "exact phase delivers everything" 3500 !delivered;
  (* Shedding phase: 10 more R rows x 50 S partners = 500 exact pairs. *)
  Engine.set_shed_rate eng 0.5;
  for i = 71 to 80 do
    ignore (Engine.insert_r eng ~a:0.0 ~b:(float_of_int i))
  done;
  let exact = 3500 + 500 in
  match Engine.shed_info eng with
  | [ d ] ->
      Alcotest.(check int) "observed counter agrees with callbacks" !delivered
        d.Engine.deg_observed;
      Alcotest.(check bool) "subsample" true (!delivered <= exact);
      let err = Float.abs (d.Engine.deg_estimate -. float_of_int exact) in
      if err > d.Engine.deg_claimed_error +. 1e-6 then
        Alcotest.failf "estimate %.1f misses exact %d by %.1f > claimed %.1f"
          d.Engine.deg_estimate exact err d.Engine.deg_claimed_error
  | info -> Alcotest.failf "expected one degraded report, got %d" (List.length info)

let test_shed_mode_rejects_deletes () =
  (* Shed mode is insert-only: a retraction would have to recompute
     exact join results and fire on_retract for pairs the subscriber
     never saw.  Both delete entry points must refuse, and the refusal
     must also cover engines dragged into shed mode mid-stream. *)
  let eng = Engine.create ~overload:Engine.Config.Shed () in
  let r, _ = Engine.insert_r eng ~a:0.0 ~b:0.0 in
  let s, _ = Engine.insert_s eng ~b:5.0 ~c:0.0 in
  (match Engine.delete_r eng r with
  | exception Cq_util.Error.Cq_error (Cq_util.Error.Invalid_parameter { name = "delete_r"; _ })
    -> ()
  | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "delete_r accepted in shed mode");
  (match Engine.delete_s eng s with
  | exception Cq_util.Error.Cq_error (Cq_util.Error.Invalid_parameter { name = "delete_s"; _ })
    -> ()
  | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "delete_s accepted in shed mode");
  (* Engagement via set_shed_rate is permanent, even back at 1.0. *)
  let eng2 = Engine.create () in
  let r2, _ = Engine.insert_r eng2 ~a:0.0 ~b:0.0 in
  Engine.set_shed_rate eng2 0.5;
  Engine.set_shed_rate eng2 1.0;
  (match Engine.delete_r eng2 r2 with
  | exception Cq_util.Error.Cq_error (Cq_util.Error.Invalid_parameter _) -> ()
  | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "delete_r accepted after mid-stream shed engagement")

(* ------------------------------ Zipf model ---------------------------- *)

let test_zipf_figure2_anchor () =
  (* The paper: with 5000 groups and beta = 1, the top 500 groups cover
     about 70% of all queries. *)
  let c = Zipf.coverage ~n_groups:5000 ~beta:1.0 ~top_k:500 in
  if c < 0.68 || c > 0.78 then Alcotest.failf "coverage %.3f outside [0.68, 0.78]" c;
  (* Coverage increases with beta. *)
  let c11 = Zipf.coverage ~n_groups:5000 ~beta:1.1 ~top_k:500 in
  let c12 = Zipf.coverage ~n_groups:5000 ~beta:1.2 ~top_k:500 in
  Alcotest.(check bool) "beta=1.1 above beta=1.0" true (c11 > c);
  Alcotest.(check bool) "beta=1.2 above beta=1.1" true (c12 > c11)

let test_zipf_bounds () =
  Alcotest.(check (float 1e-9)) "k=0" 0.0 (Zipf.coverage ~n_groups:100 ~beta:1.0 ~top_k:0);
  Alcotest.(check (float 1e-9)) "k=n" 1.0 (Zipf.coverage ~n_groups:100 ~beta:1.0 ~top_k:100);
  Alcotest.(check (float 1e-9)) "k>n clamps" 1.0 (Zipf.coverage ~n_groups:100 ~beta:1.0 ~top_k:1000)

let prop_zipf_monotone =
  QCheck2.Test.make ~name:"zipf: coverage monotone in k" ~count:100
    QCheck2.Gen.(pair (int_range 1 200) (map (fun b -> 0.5 +. (float_of_int b /. 10.0)) (int_bound 10)))
    (fun (n, beta) ->
      let prev = ref (-1.0) in
      List.for_all
        (fun k ->
          let c = Zipf.coverage ~n_groups:n ~beta ~top_k:k in
          let ok = c >= !prev in
          prev := c;
          ok)
        (List.init (min n 20) (fun i -> i + 1)))

let test_zipf_groups_needed () =
  let k = Zipf.groups_needed ~n_groups:5000 ~beta:1.0 ~target:0.70 in
  Alcotest.(check bool) "around 500" true (k > 300 && k < 700);
  Alcotest.(check (float 0.02)) "reaches target" 0.70
    (Zipf.coverage ~n_groups:5000 ~beta:1.0 ~top_k:k)

(* ---------------------------------------------------------------------- *)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "cq_engine"
    [
      ( "engine",
        [
          qc prop_engine_matches_oracle;
          qc prop_engine_rs_symmetry;
          Alcotest.test_case "unsubscribe" `Quick test_engine_unsubscribe;
          Alcotest.test_case "loads are silent" `Quick test_engine_load_does_not_fire;
          Alcotest.test_case "stats accumulate" `Quick test_engine_stats_accumulate;
          Alcotest.test_case "band retractions" `Quick test_engine_retractions;
          Alcotest.test_case "select retractions" `Quick test_engine_select_retractions;
          Alcotest.test_case "preloaded R joins S events" `Quick
            test_engine_preloaded_r_joins_s_events;
          qc prop_engine_deletions_retract;
          Alcotest.test_case "failing callback isolated" `Quick
            test_engine_isolates_failing_callback;
        ] );
      ( "batch",
        [
          qc prop_batch_matches_per_tuple;
        ] );
      ( "parallel",
        [
          qc prop_parallel_matches_sequential;
          qc prop_rereg_matches_static;
          Alcotest.test_case "migration under ingest" `Quick test_migration_under_ingest;
          Alcotest.test_case "shutdown discipline" `Quick test_parallel_shutdown_discipline;
          Alcotest.test_case "error payload field names" `Quick
            test_error_payload_field_names;
        ] );
      ( "bounded_queue",
        [
          Alcotest.test_case "try_push/try_pop" `Quick test_bounded_queue_try_ops;
          Alcotest.test_case "push_timeout" `Quick test_bounded_queue_push_timeout;
          Alcotest.test_case "blocking producer/consumer FIFO" `Quick
            test_bounded_queue_producer_consumer;
          Alcotest.test_case "try ops under contention" `Quick
            test_bounded_queue_try_ops_concurrent;
          qc prop_bounded_queue_matches_model;
        ] );
      ( "overload",
        [
          Alcotest.test_case "shutdown with in-flight batches" `Quick
            test_parallel_shutdown_with_inflight_batches;
          Alcotest.test_case "reject oversized batch not retriable" `Quick
            test_reject_oversized_batch_not_retriable;
          Alcotest.test_case "reject overload payload" `Quick test_reject_overload_payload;
          qc prop_shed_decisions_shard_invariant;
          qc prop_shed_rate_one_matches_block;
          Alcotest.test_case "exact phase folds into estimate" `Quick
            test_shed_exact_phase_folds_into_estimate;
          Alcotest.test_case "shed mode rejects deletes" `Quick test_shed_mode_rejects_deletes;
        ] );
      ( "zipf_model",
        [
          Alcotest.test_case "figure 2 anchor" `Quick test_zipf_figure2_anchor;
          Alcotest.test_case "bounds" `Quick test_zipf_bounds;
          qc prop_zipf_monotone;
          Alcotest.test_case "groups needed" `Quick test_zipf_groups_needed;
        ] );
    ]
