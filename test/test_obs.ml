(* Tests for the observability layer: metrics cells and bucketing,
   the trace ring, Chrome export well-formedness, and the end-to-end
   acceptance criterion — an instrumented band-join workload must
   produce non-zero restructure counters, a positive p99 event
   latency, and a Chrome-loadable trace. *)

module M = Cq_obs.Metrics
module T = Cq_obs.Trace

(* Every test leaves the global switches off and the global cells
   clean, whatever happens inside. *)
let with_obs f =
  M.set_enabled true;
  T.set_enabled true;
  Fun.protect f ~finally:(fun () ->
      M.set_enabled false;
      T.set_enabled false;
      M.reset ();
      T.configure ~capacity:65536)

(* ------------------------------ metrics ------------------------------ *)

let test_disabled_is_noop () =
  let c = M.counter "test.noop_counter" in
  let g = M.gauge "test.noop_gauge" in
  let h = M.histogram "test.noop_hist" in
  M.set_enabled false;
  M.incr c;
  M.add c 10;
  M.set g 3.0;
  M.observe h 42.0;
  Alcotest.(check int) "counter untouched" 0 (M.counter_value c);
  Alcotest.(check (float 0.0)) "gauge untouched" 0.0 (M.gauge_value g);
  Alcotest.(check int) "histogram untouched" 0 (M.hist_count h)

let test_cells_record_when_enabled () =
  with_obs @@ fun () ->
  let c = M.counter "test.counter" in
  let g = M.gauge "test.gauge" in
  M.incr c;
  M.add c 4;
  M.set g 2.5;
  Alcotest.(check int) "counter" 5 (M.counter_value c);
  Alcotest.(check (float 0.0)) "gauge" 2.5 (M.gauge_value g);
  Alcotest.(check bool) "interning returns the same cell" true (M.counter "test.counter" == c)

let test_histogram_percentiles () =
  with_obs @@ fun () ->
  let h = M.histogram "test.hist" in
  Alcotest.(check (float 0.0)) "empty p50" 0.0 (M.percentile h 50.0);
  for v = 1 to 100 do
    M.observe h (float_of_int v)
  done;
  Alcotest.(check int) "count" 100 (M.hist_count h);
  Alcotest.(check (float 0.0)) "p0 is exact min" 1.0 (M.percentile h 0.0);
  Alcotest.(check (float 0.0)) "p100 is exact max" 100.0 (M.percentile h 100.0);
  let p50 = M.percentile h 50.0 and p90 = M.percentile h 90.0 and p99 = M.percentile h 99.0 in
  if not (p50 <= p90 && p90 <= p99) then
    Alcotest.failf "percentiles not monotone: p50=%g p90=%g p99=%g" p50 p90 p99;
  (* The estimate may only round up to its bucket's upper bound. *)
  if p50 < 50.0 || p50 > 64.0 then Alcotest.failf "p50=%g outside [50, 64]" p50

let test_histogram_single_value () =
  with_obs @@ fun () ->
  let h = M.histogram "test.hist_single" in
  M.observe h 5.0;
  List.iter
    (fun p ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "p%g of singleton" p)
        5.0 (M.percentile h p))
    [ 0.0; 50.0; 99.0; 100.0 ]

(* qcheck: a recorded value always lies inside the bucket it was
   assigned to. *)
let prop_value_in_bucket =
  QCheck2.Test.make ~name:"value lies in its bucket" ~count:2000
    QCheck2.Gen.(float_range 0.0 1e300)
    (fun v ->
      let lo, hi = M.bucket_bounds (M.bucket_of v) in
      lo <= v && v < hi)

let test_bucket_edges () =
  Alcotest.(check int) "below 1 is bucket 0" 0 (M.bucket_of 0.5);
  Alcotest.(check int) "1 opens bucket 1" 1 (M.bucket_of 1.0);
  Alcotest.(check int) "2 opens bucket 2" 2 (M.bucket_of 2.0);
  Alcotest.(check int) "huge values cap at the last bucket" (M.n_buckets - 1)
    (M.bucket_of 1e300);
  let lo, hi = M.bucket_bounds (M.n_buckets - 1) in
  Alcotest.(check bool) "last bucket absorbs the rest" true (lo < 1e300 && hi = infinity)

let test_reset () =
  with_obs @@ fun () ->
  let c = M.counter "test.reset_counter" in
  let h = M.histogram "test.reset_hist" in
  M.incr c;
  M.observe h 7.0;
  M.reset ();
  Alcotest.(check int) "counter zeroed" 0 (M.counter_value c);
  Alcotest.(check int) "histogram zeroed" 0 (M.hist_count h);
  Alcotest.(check (float 0.0)) "percentile after reset" 0.0 (M.percentile h 50.0)

let test_snapshot_sorted () =
  with_obs @@ fun () ->
  M.incr (M.counter "test.zz");
  M.incr (M.counter "test.aa");
  let snap = M.snapshot () in
  let names = List.map fst snap.M.snap_counters in
  Alcotest.(check (list string)) "name-sorted" (List.sort String.compare names) names

(* ------------------------------- trace ------------------------------- *)

let test_trace_disabled_is_noop () =
  T.set_enabled false;
  T.clear ();
  T.instant "nothing";
  let r = T.with_span "nothing" (fun () -> 42) in
  Alcotest.(check int) "with_span passes the value through" 42 r;
  Alcotest.(check int) "ring stays empty" 0 (T.length ())

let test_trace_ring_wraps_oldest_first () =
  with_obs @@ fun () ->
  T.configure ~capacity:4;
  for i = 1 to 6 do
    T.instant (Printf.sprintf "e%d" i)
  done;
  Alcotest.(check int) "length capped" 4 (T.length ());
  Alcotest.(check int) "dropped count" 2 (T.dropped ());
  let names =
    List.map
      (function T.Instant { name; _ } -> name | T.Span { name; _ } -> name)
      (T.events ())
  in
  Alcotest.(check (list string)) "oldest-first tail" [ "e3"; "e4"; "e5"; "e6" ] names

let test_with_span_records_on_raise () =
  with_obs @@ fun () ->
  T.clear ();
  (try T.with_span "failing" (fun () -> failwith "boom") with Failure _ -> ());
  match T.events () with
  | [ T.Span { name = "failing"; dur_ns; _ } ] ->
      Alcotest.(check bool) "non-negative duration" true (dur_ns >= 0L)
  | evs -> Alcotest.failf "expected one span, got %d events" (List.length evs)

(* --------------------- minimal JSON well-formedness ------------------ *)

(* Just enough of a recursive-descent JSON parser to validate the
   Chrome trace and the bench obs block without a JSON dependency. *)
type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let parse_lit lit v =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit then begin
      pos := !pos + String.length lit;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'
          | Some '\\' -> Buffer.add_char buf '\\'
          | Some '/' -> Buffer.add_char buf '/'
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some 'r' -> Buffer.add_char buf '\r'
          | Some 'b' -> Buffer.add_char buf '\b'
          | Some 'f' -> Buffer.add_char buf '\012'
          | Some 'u' ->
              (* Keep the escape verbatim; we only need well-formedness. *)
              Buffer.add_string buf "\\u"
          | _ -> fail "bad escape");
          advance ();
          go ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          J_obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          J_obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          J_arr []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          J_arr (elems [])
        end
    | Some '"' -> J_str (parse_string ())
    | Some 't' -> parse_lit "true" (J_bool true)
    | Some 'f' -> parse_lit "false" (J_bool false)
    | Some 'n' -> parse_lit "null" J_null
    | Some _ -> J_num (parse_number ())
    | None -> fail "unexpected end"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let obj_field name = function
  | J_obj fields -> List.assoc_opt name fields
  | _ -> None

let complete_spans json =
  match obj_field "traceEvents" json with
  | Some (J_arr evs) ->
      List.filter
        (fun e ->
          match obj_field "ph" e with Some (J_str "X") -> true | _ -> false)
        evs
  | _ -> Alcotest.fail "traceEvents missing or not an array"

let test_chrome_export_well_formed () =
  with_obs @@ fun () ->
  T.clear ();
  T.instant ~cat:"test" "point";
  ignore (T.with_span ~cat:"test" "work" (fun () -> Sys.opaque_identity (List.init 100 Fun.id)));
  let json = parse_json (T.to_chrome_json ()) in
  (match obj_field "displayTimeUnit" json with
  | Some (J_str "ns") -> ()
  | _ -> Alcotest.fail "displayTimeUnit missing");
  let spans = complete_spans json in
  Alcotest.(check bool) "at least one complete span" true (List.length spans >= 1);
  List.iter
    (fun sp ->
      match (obj_field "ts" sp, obj_field "dur" sp) with
      | Some (J_num ts), Some (J_num dur) ->
          if ts < 0.0 || dur < 0.0 then Alcotest.fail "negative ts/dur"
      | _ -> Alcotest.fail "span missing ts/dur")
    spans

(* --------------------------- acceptance ------------------------------ *)

(* The ISSUE's acceptance workload: a clustered band-join population
   with metrics and tracing enabled must yield non-zero restructure
   counters in the engine stats, a positive p99 ingest latency, and a
   Chrome trace holding at least one complete span. *)
let test_band_join_acceptance () =
  with_obs @@ fun () ->
  M.reset ();
  T.clear ();
  let module E = Cq_engine.Engine in
  let rng = Cq_util.Rng.create 7 in
  let eng = E.create ~alpha:0.05 ~seed:7 () in
  let ranges =
    Cq_relation.Workload.gen_clustered_ranges ~scattered_len:(10.0, 4.0) rng ~n:200
      ~n_clusters:6 ~clustered_frac:0.9 ~domain:(-300.0, 300.0) ~cluster_halfwidth:12.0
      ~len_mu:30.0 ~len_sigma:8.0
  in
  Array.iter (fun range -> ignore (E.subscribe_band eng ~range (fun _ _ -> ()))) ranges;
  for _ = 1 to 300 do
    let b = 500.0 *. Cq_util.Rng.float rng in
    if Cq_util.Rng.bool rng then ignore (E.insert_r eng ~a:(Cq_util.Rng.float rng) ~b)
    else ignore (E.insert_s eng ~b ~c:(Cq_util.Rng.float rng))
  done;
  let st = E.stats eng in
  Alcotest.(check bool) "restructures happened" true (st.E.restructures > 0);
  Alcotest.(check bool) "splits happened" true (st.E.groups_split > 0);
  Alcotest.(check bool) "max group size tracked" true (st.E.max_group_size > 0);
  let p99 = M.percentile (M.histogram "engine.ingest_ns") 99.0 in
  Alcotest.(check bool) "p99 ingest latency positive" true (p99 > 0.0);
  let path = Filename.temp_file "cq_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      T.write_chrome ~path;
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let body = really_input_string ic len in
      close_in ic;
      let spans = complete_spans (parse_json body) in
      Alcotest.(check bool) "trace holds a complete span" true (List.length spans >= 1))

let () =
  Alcotest.run "cq_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_is_noop;
          Alcotest.test_case "cells record when enabled" `Quick test_cells_record_when_enabled;
          Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "single-value histogram" `Quick test_histogram_single_value;
          Alcotest.test_case "bucket edges" `Quick test_bucket_edges;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "snapshot sorted" `Quick test_snapshot_sorted;
          QCheck_alcotest.to_alcotest prop_value_in_bucket;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_trace_disabled_is_noop;
          Alcotest.test_case "ring wraps oldest-first" `Quick test_trace_ring_wraps_oldest_first;
          Alcotest.test_case "with_span records on raise" `Quick test_with_span_records_on_raise;
          Alcotest.test_case "chrome export well-formed" `Quick test_chrome_export_well_formed;
        ] );
      ( "acceptance",
        [ Alcotest.test_case "instrumented band join" `Quick test_band_join_acceptance ] );
    ]
