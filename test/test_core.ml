(* Tests for the paper's core machinery: canonical stabbing partitions
   (Lemma 1), the lazy and refined dynamic maintainers (Lemma 3 /
   Theorem 2), the hotspot tracker (Theorem 1, invariants I1-I3), and
   the SSI framework. *)

module I = Cq_interval.Interval
module Stabbing = Hotspot_core.Stabbing
module Rng = Cq_util.Rng

(* Element type shared by all partition tests: an interval plus a
   unique id (compare primary on lo, as the maintainers require). *)
module E = struct
  type t = { iv : I.t; id : int }

  let compare a b =
    let c = Float.compare (I.lo a.iv) (I.lo b.iv) in
    if c <> 0 then c
    else
      let c = Float.compare (I.hi a.iv) (I.hi b.iv) in
      if c <> 0 then c else Int.compare a.id b.id

  let interval e = e.iv
end

module Lazy_p = Hotspot_core.Lazy_partition.Make (E)
module Refined_p = Hotspot_core.Refined_partition.Make (E)
module Tracker = Hotspot_core.Hotspot_tracker.Make (E)

let interval_gen =
  QCheck2.Gen.(
    map2
      (fun a b -> if a <= b then I.make a b else I.make b a)
      (map float_of_int (int_bound 100))
      (map float_of_int (int_bound 100)))

(* Clustered intervals: midpoints drawn from a few centres, so real
   hotspots emerge. *)
let clustered_interval_gen =
  QCheck2.Gen.(
    let* centre = oneofl [ 10.0; 50.0; 90.0 ] in
    let* jitter = map float_of_int (int_range (-5) 5) in
    let* len = map float_of_int (int_range 1 20) in
    return (I.of_midpoint ~mid:(centre +. jitter) ~len))

let elems_of ivs = List.mapi (fun i iv -> { E.iv; id = i }) ivs

(* ---------------------------- Stabbing ------------------------------- *)

let prop_canonical_is_valid_partition =
  QCheck2.Test.make ~name:"canonical: valid partition covering all elements" ~count:500
    QCheck2.Gen.(list_size (int_range 0 300) interval_gen)
    (fun ivs ->
      let elems = Array.of_list (elems_of ivs) in
      let groups = Stabbing.canonical E.interval elems in
      let listed =
        Array.to_list groups
        |> List.map (fun (g : E.t Stabbing.group) -> (g.stab, Array.to_list g.members))
      in
      Stabbing.is_valid_partition E.interval listed
      && Array.fold_left (fun acc g -> acc + Array.length g.Stabbing.members) 0 groups
         = Array.length elems)

let prop_canonical_is_optimal =
  QCheck2.Test.make ~name:"canonical: tau equals max disjoint packing (duality)" ~count:500
    QCheck2.Gen.(list_size (int_range 0 300) interval_gen)
    (fun ivs ->
      let elems = Array.of_list (elems_of ivs) in
      Stabbing.tau E.interval elems = Stabbing.max_disjoint E.interval elems)

let prop_canonical_isect_matches_members =
  QCheck2.Test.make ~name:"canonical: group isect is exact member intersection" ~count:300
    QCheck2.Gen.(list_size (int_range 1 200) interval_gen)
    (fun ivs ->
      let elems = Array.of_list (elems_of ivs) in
      let groups = Stabbing.canonical E.interval elems in
      Array.for_all
        (fun (g : E.t Stabbing.group) ->
          let want =
            Array.fold_left (fun acc e -> I.inter acc (E.interval e))
              (I.make neg_infinity infinity) g.members
          in
          I.equal want g.isect && I.stabs g.isect g.stab)
        groups)

let test_canonical_known_example () =
  (* Figure 1 style: three clusters. *)
  let ivs =
    [ (0.0, 4.0); (1.0, 5.0); (2.0, 6.0); (10.0, 14.0); (11.0, 15.0); (20.0, 24.0) ]
    |> List.map (fun (a, b) -> I.make a b)
  in
  let elems = Array.of_list (elems_of ivs) in
  Alcotest.(check int) "tau" 3 (Stabbing.tau E.interval elems);
  let groups = Stabbing.canonical E.interval elems in
  Alcotest.(check (list int)) "group sizes" [ 3; 2; 1 ]
    (Array.to_list groups |> List.map (fun g -> Array.length g.Stabbing.members))

let test_canonical_empty_and_singleton () =
  Alcotest.(check int) "tau empty" 0 (Stabbing.tau E.interval [||]);
  Alcotest.(check int) "tau singleton" 1
    (Stabbing.tau E.interval [| { E.iv = I.make 1.0 2.0; id = 0 } |])

(* ----------------------- Dynamic maintainers -------------------------- *)

type trace_op = TIns | TDel

let trace_gen =
  (* A mix of inserts and deletes over clustered intervals. *)
  QCheck2.Gen.(
    list_size (int_range 1 250)
      (pair (frequencyl [ (3, TIns); (2, TDel) ]) clustered_interval_gen))

(* Run a trace against a maintainer, checking invariants as we go
   (sampled to keep runtime in check: the invariant check recomputes a
   canonical partition). *)
module Run_trace (P : Hotspot_core.Partition_intf.S with type elt = E.t) = struct
  let run ?(epsilon = 1.0) ops =
    let t = P.create ~epsilon ~seed:7 () in
    let live = ref [] in
    let next_id = ref 0 in
    let step = ref 0 in
    List.iter
      (fun (op, iv) ->
        incr step;
        (match op with
        | TIns ->
            let e = { E.iv; id = !next_id } in
            incr next_id;
            P.insert t e;
            live := e :: !live
        | TDel -> (
            match !live with
            | [] -> ()
            | e :: rest ->
                if not (P.delete t e) then failwith "delete of live element failed";
                live := rest));
        if !step mod 10 = 0 then P.check_invariants t)
      ops;
    P.check_invariants t;
    (t, !live)
end

module Run_lazy = Run_trace (Lazy_p)
module Run_refined = Run_trace (Refined_p)

let prop_lazy_maintains_bound =
  QCheck2.Test.make ~name:"lazy maintainer: invariants under random traces" ~count:100 trace_gen
    (fun ops ->
      let t, live = Run_lazy.run ops in
      Lazy_p.size t = List.length live)

let prop_lazy_small_epsilon =
  QCheck2.Test.make ~name:"lazy maintainer: tight epsilon = 0.1" ~count:50 trace_gen
    (fun ops ->
      let t, live = Run_lazy.run ~epsilon:0.1 ops in
      Lazy_p.size t = List.length live)

let prop_refined_maintains_bound =
  QCheck2.Test.make ~name:"refined maintainer: invariants under random traces" ~count:100
    trace_gen (fun ops ->
      let t, live = Run_refined.run ops in
      Refined_p.size t = List.length live)

let prop_refined_epsilon_three =
  QCheck2.Test.make ~name:"refined maintainer: paper's epsilon = 3" ~count:50 trace_gen
    (fun ops ->
      let t, live = Run_refined.run ~epsilon:3.0 ops in
      Refined_p.size t = List.length live)

let prop_refined_groups_valid =
  QCheck2.Test.make ~name:"refined maintainer: every group shares its stabbing point"
    ~count:100 trace_gen (fun ops ->
      let t, _ = Run_refined.run ops in
      Stabbing.is_valid_partition E.interval (Refined_p.groups t))

let prop_lazy_groups_valid =
  QCheck2.Test.make ~name:"lazy maintainer: every group shares its stabbing point" ~count:100
    trace_gen (fun ops ->
      let t, _ = Run_lazy.run ops in
      Stabbing.is_valid_partition E.interval (Lazy_p.groups t))

(* After a reconstruction the refined maintainer must hold an OPTIMAL
   partition: insert exactly enough elements to trip the trigger, then
   compare with a fresh canonical partition. *)
let prop_refined_reconstruction_is_optimal =
  QCheck2.Test.make ~name:"refined maintainer: post-reconstruction partition is optimal"
    ~count:100
    QCheck2.Gen.(list_size (int_range 1 200) clustered_interval_gen)
    (fun ivs ->
      let t = Refined_p.create ~epsilon:1.0 ~seed:3 () in
      let elems = elems_of ivs in
      List.iter (Refined_p.insert t) elems;
      (* Force a reconstruction so we are at a clean epoch. *)
      let all = Array.of_list elems in
      let tau = Stabbing.tau E.interval all in
      (* Keep inserting/deleting a probe element until a reconstruction
         happens right now. *)
      let probe = { E.iv = I.make 0.0 100.0; id = 1_000_000 } in
      let before = Refined_p.reconstructions t in
      let guard = ref 0 in
      while Refined_p.reconstructions t = before && !guard < 10_000 do
        incr guard;
        Refined_p.insert t probe;
        ignore (Refined_p.delete t probe)
      done;
      if Refined_p.updates_since_reconstruction t = 0 then
        (* tau of current set: the probe is gone, so it is exactly
           [elems]. *)
        Refined_p.num_groups t <= tau + 1
      else true)

let test_refined_delete_missing () =
  let t = Refined_p.create () in
  Refined_p.insert t { E.iv = I.make 0.0 1.0; id = 0 };
  Alcotest.(check bool) "absent" false (Refined_p.delete t { E.iv = I.make 5.0 6.0; id = 1 });
  Alcotest.(check bool) "present" true (Refined_p.delete t { E.iv = I.make 0.0 1.0; id = 0 });
  Alcotest.(check int) "empty" 0 (Refined_p.size t)

let test_refined_duplicate_insert_rejected () =
  let t = Refined_p.create () in
  let e = { E.iv = I.make 0.0 1.0; id = 0 } in
  Refined_p.insert t e;
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Refined_partition.insert: element already present") (fun () ->
      Refined_p.insert t e)

let test_lazy_duplicate_insert_rejected () =
  let t = Lazy_p.create () in
  let e = { E.iv = I.make 0.0 1.0; id = 0 } in
  Lazy_p.insert t e;
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Lazy_partition.insert: element already present") (fun () ->
      Lazy_p.insert t e)

let test_refined_group_lookup () =
  let t = Refined_p.create ~epsilon:1.0 () in
  let es = elems_of (List.map (fun (a, b) -> I.make a b) [ (0.0, 10.0); (1.0, 9.0); (50.0, 60.0) ]) in
  List.iter (Refined_p.insert t) es;
  List.iter
    (fun e ->
      let gid = Refined_p.group_of t e in
      let members = Refined_p.group_members t gid in
      if not (List.exists (fun m -> E.compare m e = 0) members) then
        Alcotest.fail "group_of/group_members inconsistent")
    es

(* --------------------------- Hotspot tracker -------------------------- *)

let tracker_trace_gen =
  QCheck2.Gen.(
    list_size (int_range 1 300)
      (pair (frequencyl [ (3, TIns); (1, TDel) ]) clustered_interval_gen))

let prop_tracker_invariants =
  QCheck2.Test.make ~name:"tracker: I1-I3 hold under random traces" ~count:60 tracker_trace_gen
    (fun ops ->
      let t = Tracker.create ~alpha:0.2 ~epsilon:1.0 () in
      let live = ref [] in
      let next_id = ref 0 in
      let step = ref 0 in
      List.iter
        (fun (op, iv) ->
          incr step;
          (match op with
          | TIns ->
              let e = { E.iv; id = !next_id } in
              incr next_id;
              Tracker.insert t e;
              live := e :: !live
          | TDel -> (
              match !live with
              | [] -> ()
              | e :: rest ->
                  if not (Tracker.delete t e) then failwith "tracker delete failed";
                  live := rest));
          if !step mod 10 = 0 then Tracker.check_invariants t)
        ops;
      Tracker.check_invariants t;
      Tracker.size t = List.length !live)

let prop_tracker_events_mirror_state =
  QCheck2.Test.make ~name:"tracker: event stream reconstructs membership" ~count:60
    tracker_trace_gen (fun ops ->
      (* Replay events into shadow sets and compare with the tracker's
         own view at the end. *)
      let shadow_hot = Hashtbl.create 16 in
      let shadow_scattered = Hashtbl.create 16 in
      let on_event = function
        | Tracker.Hotspot_created (gid, members) ->
            List.iter (fun e -> Hashtbl.replace shadow_hot e.E.id gid) members
        | Tracker.Hotspot_destroyed (_, members) ->
            List.iter (fun e -> Hashtbl.remove shadow_hot e.E.id) members
        | Tracker.Hotspot_added (gid, e) -> Hashtbl.replace shadow_hot e.E.id gid
        | Tracker.Hotspot_removed (_, e) -> Hashtbl.remove shadow_hot e.E.id
        | Tracker.Scattered_added e -> Hashtbl.replace shadow_scattered e.E.id ()
        | Tracker.Scattered_removed e -> Hashtbl.remove shadow_scattered e.E.id
      in
      let t = Tracker.create ~alpha:0.25 ~on_event () in
      let live = ref [] in
      let next_id = ref 0 in
      List.iter
        (fun (op, iv) ->
          match op with
          | TIns ->
              let e = { E.iv; id = !next_id } in
              incr next_id;
              Tracker.insert t e;
              live := e :: !live
          | TDel -> (
              match !live with
              | [] -> ()
              | e :: rest ->
                  ignore (Tracker.delete t e);
                  live := rest))
        ops;
      let hot_ok =
        List.for_all
          (fun e ->
            match Tracker.hotspot_of t e with
            | Some gid -> Hashtbl.find_opt shadow_hot e.E.id = Some gid
            | None -> not (Hashtbl.mem shadow_hot e.E.id))
          !live
      in
      let scattered_ids =
        Tracker.scattered t |> List.map (fun e -> e.E.id) |> List.sort compare
      in
      let shadow_ids =
        Hashtbl.fold (fun id () acc -> id :: acc) shadow_scattered [] |> List.sort compare
      in
      hot_ok && scattered_ids = shadow_ids)

let test_tracker_promotes_cluster () =
  (* 20 heavily overlapping intervals + 2 stragglers, alpha = 0.5:
     the cluster must become a hotspot. *)
  let t = Tracker.create ~alpha:0.5 () in
  for i = 0 to 19 do
    Tracker.insert t { E.iv = I.make (float_of_int i /. 10.0) 10.0; id = i }
  done;
  Tracker.insert t { E.iv = I.make 100.0 101.0; id = 100 };
  Tracker.insert t { E.iv = I.make 200.0 201.0; id = 101 };
  Alcotest.(check int) "one hotspot" 1 (Tracker.num_hotspots t);
  Alcotest.(check int) "scattered" 2 (Tracker.scattered_count t);
  let _, stab, members = List.hd (Tracker.hotspots t) in
  Alcotest.(check int) "hotspot size" 20 (List.length members);
  List.iter
    (fun e -> if not (I.stabs e.E.iv stab) then Alcotest.fail "stab point misses a member")
    members;
  Alcotest.(check (float 1e-9)) "coverage" (20.0 /. 22.0) (Tracker.coverage t)

let test_tracker_demotes_on_deletion () =
  let t = Tracker.create ~alpha:0.5 () in
  (* Cluster of 10 out of 12 -> hotspot; delete cluster members until
     it drops below alpha/2 of |I|. *)
  let cluster = List.init 10 (fun i -> { E.iv = I.make 0.0 10.0; id = i }) in
  List.iter (Tracker.insert t) cluster;
  let outsiders =
    List.init 8 (fun i -> { E.iv = I.make (100.0 +. (20.0 *. float_of_int i)) (101.0 +. (20.0 *. float_of_int i)); id = 100 + i })
  in
  List.iter (Tracker.insert t) outsiders;
  Alcotest.(check int) "hotspot formed" 1 (Tracker.num_hotspots t);
  (* Delete 8 of the 10 cluster members: 2 remaining of 10 total is
     below alpha/2 = 0.25. *)
  List.iteri (fun i e -> if i < 8 then ignore (Tracker.delete t e)) cluster;
  Tracker.check_invariants t;
  Alcotest.(check int) "hotspot dissolved" 0 (Tracker.num_hotspots t);
  Alcotest.(check int) "all scattered" 10 (Tracker.scattered_count t)

let test_tracker_insert_into_hotspot () =
  let t = Tracker.create ~alpha:0.3 () in
  List.iter (Tracker.insert t) (List.init 10 (fun i -> { E.iv = I.make 0.0 10.0; id = i }));
  Alcotest.(check int) "hotspot" 1 (Tracker.num_hotspots t);
  (* A new overlapping interval goes straight into the hotspot. *)
  Tracker.insert t { E.iv = I.make 5.0 20.0; id = 50 };
  Alcotest.(check int) "still one group" 1 (Tracker.num_hotspots t);
  Alcotest.(check int) "no scattered" 0 (Tracker.scattered_count t);
  Alcotest.(check bool) "member of hotspot" true
    (Tracker.hotspot_of t { E.iv = I.make 5.0 20.0; id = 50 } <> None)

let test_tracker_isect_narrow_after_delete () =
  (* Documented narrow-only behaviour of a hot group's maintained
     intersection: deleting a member never re-widens it, so after the
     narrow member [5,6] leaves a group of [0,10]s the stabbing point
     stays inside [5,6] — narrower than the true common intersection,
     but still stabbing every member (the only invariant promised). *)
  let t = Tracker.create ~alpha:0.5 () in
  let narrow = { E.iv = I.make 5.0 6.0; id = 0 } in
  Tracker.insert t narrow;
  let wide = List.init 3 (fun i -> { E.iv = I.make 0.0 10.0; id = 1 + i }) in
  List.iter (Tracker.insert t) wide;
  Alcotest.(check int) "one hot group" 1 (Tracker.num_hotspots t);
  Alcotest.(check int) "all four members hot" 4
    (let _, _, ms = List.hd (Tracker.hotspots t) in
     List.length ms);
  Alcotest.(check bool) "narrow member deleted" true (Tracker.delete t narrow);
  Tracker.check_invariants t;
  let gid, stab, members = List.hd (Tracker.hotspots t) in
  Alcotest.(check int) "group survives with the wide members" 3 (List.length members);
  Alcotest.(check (float 0.0)) "stab point pinned by the old narrow isect" stab
    (Tracker.hotspot_stab t gid);
  Alcotest.(check bool) "isect stayed narrow (not re-widened to [0,10])" true
    (stab >= 5.0 && stab <= 6.0);
  List.iter
    (fun e ->
      if not (I.stabs e.E.iv stab) then Alcotest.fail "narrowed stab point misses a member")
    members

let test_tracker_alpha_validation () =
  (match Tracker.try_create ~alpha:0.0 () with
  | Error (Cq_util.Error.Invalid_parameter { name = "alpha"; _ }) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Cq_util.Error.to_string e)
  | Ok _ -> Alcotest.fail "alpha = 0 accepted");
  (match Tracker.try_create ~epsilon:(-1.0) () with
  | Error (Cq_util.Error.Invalid_parameter { name = "epsilon"; _ }) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Cq_util.Error.to_string e)
  | Ok _ -> Alcotest.fail "epsilon < 0 accepted");
  match Tracker.create ~alpha:1.5 () with
  | exception Cq_util.Error.Cq_error (Cq_util.Error.Invalid_parameter { name = "alpha"; _ }) -> ()
  | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "alpha > 1 accepted"


let test_tracker_lookup_errors () =
  let t = Tracker.create ~alpha:0.5 () in
  Alcotest.check_raises "unknown hotspot id" Not_found (fun () ->
      ignore (Tracker.hotspot_stab t 42));
  let e = { E.iv = I.make 0.0 1.0; id = 0 } in
  Alcotest.(check bool) "mem absent" false (Tracker.mem t e);
  Tracker.insert t e;
  Alcotest.(check bool) "mem present" true (Tracker.mem t e);
  Alcotest.check_raises "duplicate insert"
    (Invalid_argument "Hotspot_tracker.insert: element already present") (fun () ->
      Tracker.insert t e)

let test_refined_groups_in_order () =
  let t = Refined_p.create ~epsilon:1.0 () in
  let es =
    elems_of
      (List.map (fun (a, b) -> I.make a b)
         [ (0.0, 10.0); (2.0, 8.0); (50.0, 60.0); (52.0, 58.0); (90.0, 95.0) ])
  in
  List.iter (Refined_p.insert t) es;
  let stabs = List.map fst (Refined_p.groups_in_order t) in
  (* Old groups come first in invariant-(⋆) order: their stabbing
     points must be sorted among themselves. *)
  let olds = List.filteri (fun i _ -> i < Refined_p.num_groups t - 0) stabs in
  ignore olds;
  Alcotest.(check bool) "some groups" true (List.length stabs >= 1);
  (* All elements accounted for exactly once. *)
  let total =
    List.fold_left (fun acc (_, ms) -> acc + List.length ms) 0 (Refined_p.groups_in_order t)
  in
  Alcotest.(check int) "covers all" 5 total

(* ------------------------------- SSI ---------------------------------- *)

module Count_group = struct
  type elt = E.t
  type t = { stab : float; members : E.t array }

  let build ~stab members = { stab; members }
end

module Ssi_count = Hotspot_core.Ssi.Make (E) (Count_group)

let prop_ssi_covers_all =
  QCheck2.Test.make ~name:"ssi: groups cover all elements, stabbed by points" ~count:200
    QCheck2.Gen.(list_size (int_range 0 200) interval_gen)
    (fun ivs ->
      let elems = Array.of_list (elems_of ivs) in
      let ssi = Ssi_count.build elems in
      let total = ref 0 in
      let ok = ref true in
      Ssi_count.iter ssi (fun ~stab g ->
          total := !total + Array.length g.Count_group.members;
          Array.iter
            (fun e -> if not (I.stabs (E.interval e) stab) then ok := false)
            g.Count_group.members);
      !ok
      && !total = Array.length elems
      && Ssi_count.num_groups ssi = Stabbing.tau E.interval elems
      && Ssi_count.size ssi = Array.length elems)

let prop_ssi_points_sorted =
  QCheck2.Test.make ~name:"ssi: stabbing points strictly increasing" ~count:200
    QCheck2.Gen.(list_size (int_range 0 200) interval_gen)
    (fun ivs ->
      let elems = Array.of_list (elems_of ivs) in
      let pts = Ssi_count.stabbing_points (Ssi_count.build elems) in
      let ok = ref true in
      for i = 1 to Array.length pts - 1 do
        if pts.(i - 1) >= pts.(i) then ok := false
      done;
      !ok)


(* ---------------------------- 2-D partitions --------------------------- *)

module Rect = Cq_index.Rect
module S2 = Hotspot_core.Stabbing2d

let rect_gen =
  QCheck2.Gen.(
    map2 (fun x y -> Rect.make ~x ~y)
      (map2 (fun a b -> if a <= b then I.make a b else I.make b a)
         (map float_of_int (int_bound 50)) (map float_of_int (int_bound 50)))
      (map2 (fun a b -> if a <= b then I.make a b else I.make b a)
         (map float_of_int (int_bound 50)) (map float_of_int (int_bound 50))))

let prop_2d_partition_valid =
  QCheck2.Test.make ~name:"2d partition: valid, covering, bounded by tau_x * tau_y" ~count:300
    QCheck2.Gen.(list_size (int_range 0 150) rect_gen)
    (fun rects ->
      let elems = Array.of_list rects in
      let groups = S2.partition Fun.id elems in
      let total = Array.fold_left (fun acc g -> acc + Array.length g.S2.members) 0 groups in
      let tau_x = Stabbing.tau (fun (r : Rect.t) -> r.Rect.x) elems in
      let tau_y = Stabbing.tau (fun (r : Rect.t) -> r.Rect.y) elems in
      S2.is_valid Fun.id groups
      && total = Array.length elems
      && Array.length groups <= max 1 (tau_x * tau_y)
      && Array.length groups >= max tau_x tau_y)

let test_2d_clustered_exact () =
  (* Three axis-aligned clusters of overlapping rectangles -> exactly
     three groups. *)
  let cluster cx cy =
    Array.init 20 (fun i ->
        let j = float_of_int i in
        Rect.of_bounds ~x0:(cx -. 10.0 -. j) ~x1:(cx +. 10.0 +. j) ~y0:(cy -. 5.0)
          ~y1:(cy +. 5.0 +. j))
  in
  let elems = Array.concat [ cluster 100.0 100.0; cluster 500.0 200.0; cluster 900.0 50.0 ] in
  let groups = S2.partition Fun.id elems in
  Alcotest.(check int) "three groups" 3 (Array.length groups);
  Alcotest.(check bool) "valid" true (S2.is_valid Fun.id groups);
  Alcotest.(check (float 1e-9)) "top-1 coverage" (1.0 /. 3.0)
    (S2.coverage_of_top Fun.id elems ~top:1)

let test_2d_empty () =
  Alcotest.(check int) "empty" 0 (Array.length (S2.partition Fun.id ([||] : Rect.t array)));
  Alcotest.(check (float 0.0)) "coverage of empty" 0.0
    (S2.coverage_of_top Fun.id ([||] : Rect.t array) ~top:5)

(* ---------------------------------------------------------------------- *)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "hotspot_core"
    [
      ( "stabbing",
        [
          qc prop_canonical_is_valid_partition;
          qc prop_canonical_is_optimal;
          qc prop_canonical_isect_matches_members;
          Alcotest.test_case "known example" `Quick test_canonical_known_example;
          Alcotest.test_case "empty/singleton" `Quick test_canonical_empty_and_singleton;
        ] );
      ( "lazy_partition",
        [
          qc prop_lazy_maintains_bound;
          qc prop_lazy_small_epsilon;
          qc prop_lazy_groups_valid;
          Alcotest.test_case "duplicate rejected" `Quick test_lazy_duplicate_insert_rejected;
        ] );
      ( "refined_partition",
        [
          qc prop_refined_maintains_bound;
          qc prop_refined_epsilon_three;
          qc prop_refined_groups_valid;
          qc prop_refined_reconstruction_is_optimal;
          Alcotest.test_case "delete missing" `Quick test_refined_delete_missing;
          Alcotest.test_case "duplicate rejected" `Quick test_refined_duplicate_insert_rejected;
          Alcotest.test_case "group lookup" `Quick test_refined_group_lookup;
          Alcotest.test_case "groups in order" `Quick test_refined_groups_in_order;
        ] );
      ( "hotspot_tracker",
        [
          qc prop_tracker_invariants;
          qc prop_tracker_events_mirror_state;
          Alcotest.test_case "promotes cluster" `Quick test_tracker_promotes_cluster;
          Alcotest.test_case "demotes on deletion" `Quick test_tracker_demotes_on_deletion;
          Alcotest.test_case "insert into hotspot" `Quick test_tracker_insert_into_hotspot;
          Alcotest.test_case "isect narrow after delete" `Quick
            test_tracker_isect_narrow_after_delete;
          Alcotest.test_case "alpha validation" `Quick test_tracker_alpha_validation;
          Alcotest.test_case "lookup errors" `Quick test_tracker_lookup_errors;
        ] );
      ("ssi", [ qc prop_ssi_covers_all; qc prop_ssi_points_sorted ]);
      ( "stabbing2d",
        [
          qc prop_2d_partition_valid;
          Alcotest.test_case "clustered exact" `Quick test_2d_clustered_exact;
          Alcotest.test_case "empty" `Quick test_2d_empty;
        ] );
    ]
