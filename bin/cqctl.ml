(* cqctl — command-line front end for the hotspot continuous-query
   system: run reproduction experiments, inspect workloads, query the
   Zipf coverage model. *)

open Cmdliner

let scale_term =
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Use the paper's full sizes (slower).")
  in
  Term.(const (fun f -> if f then Cq_bench.Setup.full else Cq_bench.Setup.quick) $ full)

(* ------------------------------ bench --------------------------------- *)

let bench_cmd =
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc:"Experiment ids (see $(b,list)); default: all.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"DIR"
          ~doc:"Also write one machine-readable BENCH_<id>.json per experiment into $(docv).")
  in
  let run scale json ids =
    (match json with Some dir -> Cq_bench.Report.json_begin ~dir | None -> ());
    let finish outcome =
      if json <> None then Cq_bench.Report.json_end ();
      outcome
    in
    match ids with
    | [] ->
        Cq_bench.Registry.run_all scale;
        Cq_bench.Micro.run ();
        finish (`Ok ())
    | ids ->
        let rec go = function
          | [] -> `Ok ()
          | "micro" :: rest ->
              Cq_bench.Micro.run ();
              go rest
          | id :: rest -> (
              match Cq_bench.Registry.find id with
              | Some e ->
                  e.run scale;
                  go rest
              | None -> `Error (false, Printf.sprintf "unknown experiment %S (try: cqctl list)" id))
        in
        finish (go ids)
  in
  let info = Cmd.info "bench" ~doc:"Run reproduction experiments (tables/figures/ablations)." in
  Cmd.v info Term.(ret (const run $ scale_term $ json $ ids))

let list_cmd =
  let run () =
    List.iter print_endline (Cq_bench.Registry.ids ());
    print_endline "micro"
  in
  Cmd.v (Cmd.info "list" ~doc:"List experiment ids.") Term.(const run $ const ())

(* ------------------------------ zipf ---------------------------------- *)

let zipf_cmd =
  let groups =
    Arg.(value & opt int 5000 & info [ "groups" ] ~docv:"N" ~doc:"Number of stabbing groups.")
  in
  let beta = Arg.(value & opt float 1.0 & info [ "beta" ] ~doc:"Zipf exponent.") in
  let target =
    Arg.(value & opt float 0.7 & info [ "target" ] ~doc:"Coverage target in [0,1].")
  in
  let run groups beta target =
    let k = Cq_engine.Zipf_model.groups_needed ~n_groups:groups ~beta ~target in
    Printf.printf
      "with %d groups and beta = %g, the top %d groups (%.1f%% of groups) cover %.1f%% of queries\n"
      groups beta k
      (100.0 *. float_of_int k /. float_of_int groups)
      (100.0 *. Cq_engine.Zipf_model.coverage ~n_groups:groups ~beta ~top_k:k)
  in
  Cmd.v
    (Cmd.info "zipf" ~doc:"Figure 2's hotspot-coverage model: groups needed for a coverage target.")
    Term.(const run $ groups $ beta $ target)

(* ----------------------------- workload -------------------------------- *)

let workload_cmd =
  let n = Arg.(value & opt int 20_000 & info [ "n" ] ~doc:"Number of query ranges.") in
  let clusters = Arg.(value & opt int 40 & info [ "clusters" ] ~doc:"Cluster count.") in
  let frac =
    Arg.(value & opt float 0.8 & info [ "frac" ] ~doc:"Fraction of clustered ranges.")
  in
  let alpha = Arg.(value & opt float 0.005 & info [ "alpha" ] ~doc:"Hotspot threshold.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed.") in
  let run n n_clusters frac alpha seed =
    let rng = Cq_util.Rng.create seed in
    let ranges =
      Cq_relation.Workload.gen_clustered_ranges ~scattered_len:(10.0, 4.0) rng ~n ~n_clusters
        ~clustered_frac:frac ~domain:(0.0, 10_000.0) ~cluster_halfwidth:60.0 ~len_mu:300.0
        ~len_sigma:100.0
    in
    let queries = Cq_joins.Band_query.of_ranges ranges in
    let tau = Hotspot_core.Stabbing.tau Cq_joins.Band_query.Elem.interval queries in
    let module T = Hotspot_core.Hotspot_tracker.Make (Cq_joins.Band_query.Elem) in
    let tr = T.create ~alpha () in
    let _, dt = Cq_util.Clock.time (fun () -> Array.iter (fun q -> T.insert tr q) queries) in
    Printf.printf "ranges              %d\n" n;
    Printf.printf "tau (optimal)       %d\n" tau;
    Printf.printf "hotspots (alpha=%g) %d\n" alpha (T.num_hotspots tr);
    Printf.printf "hotspot coverage    %.1f%%\n" (100.0 *. T.coverage tr);
    Printf.printf "scattered groups    %d\n" (T.scattered_groups tr);
    Printf.printf "moves/update        %.3f (bound: 5)\n"
      (float_of_int (T.moves tr) /. float_of_int (max 1 (T.updates tr)));
    Printf.printf "build time          %.2fs (%.1fus/insert)\n" dt (1e6 *. dt /. float_of_int n)
  in
  Cmd.v
    (Cmd.info "workload" ~doc:"Generate a clustered workload and report its hotspot structure.")
    Term.(const run $ n $ clusters $ frac $ alpha $ seed)

(* ------------------------------ fuzz ----------------------------------- *)

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"RNG seed; failures replay exactly under the same seed.")

(* "itree" | "skiplist" | "treap" for a single backend, or "all". *)
let backend_arg =
  let parse s =
    if s = "all" then Ok None
    else
      match Cq_index.Stab_backend.of_string s with
      | Ok k -> Ok (Some k)
      | Error msg -> Error (`Msg msg)
  in
  let print fmt = function
    | None -> Format.pp_print_string fmt "all"
    | Some k -> Format.pp_print_string fmt (Cq_index.Stab_backend.to_string k)
  in
  Arg.(
    value
    & opt (conv (parse, print)) (Some Cq_index.Stab_backend.Itree)
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:"Engine stabbing backend: $(b,itree), $(b,skiplist), $(b,treap), or $(b,all).")

let backends_of = function Some k -> [ k ] | None -> Cq_index.Stab_backend.all

let fuzz_cmd =
  let ops =
    Arg.(value & opt int 20_000 & info [ "ops" ] ~docv:"M" ~doc:"Operations per structure.")
  in
  let run seed ops backend =
    let outcomes =
      match backends_of backend with
      | [ b ] -> Cq_robust.Oracle.fuzz_all ~backend:b ~seed ~ops ()
      | b0 :: rest ->
          (* One full battery, then the engine alone under each further
             backend — the structure runs are backend-independent. *)
          Cq_robust.Oracle.fuzz_all ~backend:b0 ~seed ~ops ()
          @ List.map
              (fun b ->
                Cq_robust.Oracle.run_engine ~backend:b ~seed ~ops:(max 200 (ops / 10)) ())
              rest
      | [] -> []
    in
    List.iter (fun o -> Format.printf "@[<v>%a@]@." Cq_robust.Oracle.pp_outcome o) outcomes;
    let bad = List.filter (fun o -> not (Cq_robust.Oracle.passed o)) outcomes in
    if bad = [] then (
      Format.printf "all %d structures agree with the oracle@." (List.length outcomes);
      `Ok ())
    else
      `Error
        ( false,
          Printf.sprintf "%d structure(s) diverged or violated invariants (seed %d)"
            (List.length bad) seed )
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: run a seeded adversarial operation stream against every \
          structure and a naive oracle; exit nonzero on any divergence or invariant violation.")
    Term.(ret (const run $ seed_arg $ ops $ backend_arg))

(* ------------------------------ audit ---------------------------------- *)

let audit_cmd =
  let n =
    Arg.(value & opt int 10_000 & info [ "n" ] ~docv:"N" ~doc:"Workload operations to build each structure from.")
  in
  let run seed n backend =
    let reports =
      List.concat_map
        (fun b -> Cq_robust.Oracle.audit_workload ~backend:b ~seed ~n ())
        (backends_of backend)
    in
    let bad = ref 0 in
    List.iter
      (fun (name, report) ->
        (match report with Ok () -> () | Error _ -> incr bad);
        Format.printf "@[<v>%-22s %a@]@." name Cq_robust.Invariant.pp_report report)
      reports;
    if !bad = 0 then `Ok ()
    else `Error (false, Printf.sprintf "%d structure(s) failed their audit (seed %d)" !bad seed)
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Build every structure from a seeded workload and run its deep invariant audit; \
          exit nonzero on any violation.")
    Term.(ret (const run $ seed_arg $ n $ backend_arg))

let main =
  let doc = "scalable continuous query processing by tracking hotspots (VLDB 2006 reproduction)" in
  Cmd.group
    (Cmd.info "cqctl" ~version:"1.0.0" ~doc)
    [ bench_cmd; list_cmd; zipf_cmd; workload_cmd; fuzz_cmd; audit_cmd ]

let () = exit (Cmd.eval main)
