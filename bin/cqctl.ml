(* cqctl — command-line front end for the hotspot continuous-query
   system: run reproduction experiments, inspect workloads, query the
   Zipf coverage model. *)

open Cmdliner

(* Reject bad shard counts at parse time: the library's plain
   constructors raise Cq_error on shards < 1, which cmdliner would
   report as an "internal error" rather than a usage error. *)
let shard_count =
  let parse s =
    match Arg.conv_parser Arg.int s with
    | Ok n when n >= 1 -> Ok n
    | Ok n -> Error (`Msg (Printf.sprintf "shard count must be >= 1, got %d" n))
    | Error _ as e -> e
  in
  Arg.conv (parse, Arg.conv_printer Arg.int)

let scale_term =
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Use the paper's full sizes (slower).")
  in
  let shards =
    Arg.(
      value
      & opt (some (list shard_count)) None
      & info [ "shards" ] ~docv:"N,.."
          ~doc:
            "Override the shard counts swept by $(b,scale-domains) (comma-separated, e.g. \
             $(b,--shards 1,2)).")
  in
  let rebalance =
    let parse s =
      match Arg.conv_parser Arg.float s with
      | Ok t when Float.is_finite t && t >= 1.0 -> Ok t
      | Ok _ -> Error (`Msg (Printf.sprintf "rebalance threshold must be >= 1.0, got %s" s))
      | Error _ as e -> e
    in
    Arg.(
      value
      & opt (some (conv (parse, Arg.conv_printer Arg.float))) None
      & info [ "rebalance" ] ~docv:"THRESH"
          ~doc:
            "Arm the $(b,rebalance-drift) experiment's strip rebalancer at imbalance-ratio \
             threshold $(docv) (>= 1.0; default 1.5).")
  in
  Term.(
    const (fun f shards rebalance ->
        let s = if f then Cq_bench.Setup.full else Cq_bench.Setup.quick in
        let s =
          match shards with None -> s | Some sh -> { s with Cq_bench.Setup.shards = sh }
        in
        match rebalance with
        | None -> s
        | Some _ -> { s with Cq_bench.Setup.rebalance })
    $ full $ shards $ rebalance)

(* --------------------------- observability ----------------------------- *)

let metrics_term =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Enable the observability registry (and trace ring) for the run and dump a \
           metrics snapshot when done.")

(* Wrap a command body: flip the global switches on first, dump the
   registry after.  With the flag off this is a plain call — the
   instrumentation in the libraries stays disabled (its default). *)
let with_metrics enabled f =
  if enabled then begin
    Cq_obs.Metrics.set_enabled true;
    Cq_obs.Trace.set_enabled true
  end;
  let r = f () in
  if enabled then Format.printf "@.-- metrics ---------------------------------------------------@.%a" Cq_obs.Metrics.pp ();
  r

(* Shared demo workload for $(b,stats) and $(b,trace): a band-join
   engine under a clustered query population hot enough that the
   trackers promote (and, after the unsubscribe wave, demote) groups. *)
let run_demo ~queries ~events ~alpha ~seed ~backend ~strategy =
  let module E = Cq_engine.Engine in
  let rng = Cq_util.Rng.create seed in
  let eng = E.create ~alpha ~seed ~backend ~strategy () in
  let ranges =
    Cq_relation.Workload.gen_clustered_ranges ~scattered_len:(10.0, 4.0) rng ~n:queries
      ~n_clusters:8 ~clustered_frac:0.9 ~domain:(-500.0, 500.0) ~cluster_halfwidth:15.0
      ~len_mu:40.0 ~len_sigma:10.0
  in
  let subs =
    Array.map (fun range -> E.subscribe_band eng ~range (fun _ _ -> ())) ranges
  in
  let r_tuples = ref [] in
  for _ = 1 to events do
    let b = 1000.0 *. Cq_util.Rng.float rng in
    if Cq_util.Rng.bool rng then begin
      let r, _ = E.insert_r eng ~a:(100.0 *. Cq_util.Rng.float rng) ~b in
      r_tuples := r :: !r_tuples
    end
    else ignore (E.insert_s eng ~b ~c:(100.0 *. Cq_util.Rng.float rng))
  done;
  (* A deletion and unsubscribe wave: exercises the retract path and
     drives hotspot groups below the demotion threshold. *)
  List.iteri (fun i r -> if i mod 4 = 0 then ignore (E.delete_r eng r)) !r_tuples;
  Array.iteri (fun i sub -> if i mod 2 = 0 then ignore (E.unsubscribe eng sub)) subs;
  eng

(* ------------------------------ bench --------------------------------- *)

let bench_cmd =
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc:"Experiment ids (see $(b,list)); default: all.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"DIR"
          ~doc:"Also write one machine-readable BENCH_<id>.json per experiment into $(docv).")
  in
  let run scale json metrics ids =
    with_metrics metrics @@ fun () ->
    (match json with Some dir -> Cq_bench.Report.json_begin ~dir | None -> ());
    let finish outcome =
      if Option.is_some json then Cq_bench.Report.json_end ();
      outcome
    in
    match ids with
    | [] ->
        Cq_bench.Registry.run_all scale;
        Cq_bench.Micro.run ();
        finish (`Ok ())
    | ids ->
        let rec go = function
          | [] -> `Ok ()
          | "micro" :: rest ->
              Cq_bench.Micro.run ();
              go rest
          | id :: rest -> (
              match Cq_bench.Registry.find id with
              | Some e ->
                  e.run scale;
                  go rest
              | None -> `Error (false, Printf.sprintf "unknown experiment %S (try: cqctl list)" id))
        in
        finish (go ids)
  in
  let info = Cmd.info "bench" ~doc:"Run reproduction experiments (tables/figures/ablations)." in
  Cmd.v info Term.(ret (const run $ scale_term $ json $ metrics_term $ ids))

let list_cmd =
  let run () =
    List.iter print_endline (Cq_bench.Registry.ids ());
    print_endline "micro"
  in
  Cmd.v (Cmd.info "list" ~doc:"List experiment ids.") Term.(const run $ const ())

(* ------------------------------ zipf ---------------------------------- *)

let zipf_cmd =
  let groups =
    Arg.(value & opt int 5000 & info [ "groups" ] ~docv:"N" ~doc:"Number of stabbing groups.")
  in
  let beta = Arg.(value & opt float 1.0 & info [ "beta" ] ~doc:"Zipf exponent.") in
  let target =
    Arg.(value & opt float 0.7 & info [ "target" ] ~doc:"Coverage target in [0,1].")
  in
  let run groups beta target =
    let k = Cq_engine.Zipf_model.groups_needed ~n_groups:groups ~beta ~target in
    Printf.printf
      "with %d groups and beta = %g, the top %d groups (%.1f%% of groups) cover %.1f%% of queries\n"
      groups beta k
      (100.0 *. float_of_int k /. float_of_int groups)
      (100.0 *. Cq_engine.Zipf_model.coverage ~n_groups:groups ~beta ~top_k:k)
  in
  Cmd.v
    (Cmd.info "zipf" ~doc:"Figure 2's hotspot-coverage model: groups needed for a coverage target.")
    Term.(const run $ groups $ beta $ target)

(* ----------------------------- workload -------------------------------- *)

let workload_cmd =
  let n = Arg.(value & opt int 20_000 & info [ "n" ] ~doc:"Number of query ranges.") in
  let clusters = Arg.(value & opt int 40 & info [ "clusters" ] ~doc:"Cluster count.") in
  let frac =
    Arg.(value & opt float 0.8 & info [ "frac" ] ~doc:"Fraction of clustered ranges.")
  in
  let alpha = Arg.(value & opt float 0.005 & info [ "alpha" ] ~doc:"Hotspot threshold.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed.") in
  let run n n_clusters frac alpha seed =
    let rng = Cq_util.Rng.create seed in
    let ranges =
      Cq_relation.Workload.gen_clustered_ranges ~scattered_len:(10.0, 4.0) rng ~n ~n_clusters
        ~clustered_frac:frac ~domain:(0.0, 10_000.0) ~cluster_halfwidth:60.0 ~len_mu:300.0
        ~len_sigma:100.0
    in
    let queries = Cq_joins.Band_query.of_ranges ranges in
    let tau = Hotspot_core.Stabbing.tau Cq_joins.Band_query.Elem.interval queries in
    let module T = Hotspot_core.Hotspot_tracker.Make (Cq_joins.Band_query.Elem) in
    let tr = T.create ~alpha () in
    let _, dt = Cq_util.Clock.time (fun () -> Array.iter (fun q -> T.insert tr q) queries) in
    Printf.printf "ranges              %d\n" n;
    Printf.printf "tau (optimal)       %d\n" tau;
    Printf.printf "hotspots (alpha=%g) %d\n" alpha (T.num_hotspots tr);
    Printf.printf "hotspot coverage    %.1f%%\n" (100.0 *. T.coverage tr);
    Printf.printf "scattered groups    %d\n" (T.scattered_groups tr);
    Printf.printf "moves/update        %.3f (bound: 5)\n"
      (float_of_int (T.moves tr) /. float_of_int (max 1 (T.updates tr)));
    Printf.printf "build time          %.2fs (%.1fus/insert)\n" dt (1e6 *. dt /. float_of_int n)
  in
  Cmd.v
    (Cmd.info "workload" ~doc:"Generate a clustered workload and report its hotspot structure.")
    Term.(const run $ n $ clusters $ frac $ alpha $ seed)

(* Bursty overload demo: a Shed/Reject-policy parallel engine under
   volleys that outrun the drain, so the policy visibly engages.  Used
   by $(b,stats --overload). *)
let run_overload_demo ~seed ~overload ~events =
  let module Par = Cq_engine.Parallel in
  let module E = Cq_engine.Engine in
  let module I = Cq_interval.Interval in
  let t =
    Par.create ~alpha:0.1 ~seed ~shards:2 ~batch_size:8 ~overload ()
  in
  let rng = Cq_util.Rng.create seed in
  for _ = 1 to 12 do
    let lo = (Cq_util.Rng.float rng *. 30.0) -. 15.0 in
    ignore
      (Par.subscribe_band t ~range:(I.make lo (lo +. (1.0 +. (Cq_util.Rng.float rng *. 5.0))))
         (fun _ _ -> ()))
  done;
  let rejected = ref 0 and accepted = ref 0 in
  Array.iter
    (fun op ->
      match op with
      | Cq_robust.Fault.Burst_r rows -> (
          match Par.try_ingest_batch t Par.R rows with
          | Ok () -> incr accepted
          | Error _ -> incr rejected)
      | Cq_robust.Fault.Burst_s rows -> (
          match Par.try_ingest_batch t Par.S rows with
          | Ok () -> incr accepted
          | Error _ -> incr rejected)
      | Cq_robust.Fault.Burst_flush -> ignore (Par.flush t))
    (Cq_robust.Fault.gen_burst ~seed ~n:(max 24 (events / 50)));
  ignore (Par.flush t);
  let totals = Par.shed_totals t in
  let info = Par.shed_info t in
  let stats = Par.stats t in
  Par.shutdown t;
  Format.printf "@[<v>%a@]@." E.pp_stats stats;
  Format.printf
    "@.-- overload (%s) ---------------------------------------------@."
    (E.Config.overload_to_string overload);
  Format.printf "batches accepted     %d@." !accepted;
  Format.printf "batches rejected     %d@." !rejected;
  Format.printf "candidates kept      %d@." totals.Par.par_kept;
  Format.printf "candidates dropped   %d@." totals.Par.par_dropped;
  Format.printf "min keep-rate        %.3f@." totals.Par.par_min_rate;
  Format.printf "chunks dropped whole %d (%d rows)@." totals.Par.par_dropped_chunks
    totals.Par.par_dropped_rows;
  Format.printf "degraded queries     %d@." (List.length info);
  List.iter
    (fun (d : E.degraded) ->
      Format.printf
        "  q%-4d observed %-6d estimate %-10.1f +/- %-10.1f (min rate %.3f)@." d.E.deg_qid
        d.E.deg_observed d.E.deg_estimate d.E.deg_claimed_error d.E.deg_rate)
    info;
  if totals.Par.par_dropped_rows > 0 then
    Format.printf
      "  note: %d rows were dropped whole at admission and are outside the estimates — \
       the claimed bounds above are not valid for this run@."
      totals.Par.par_dropped_rows

(* ------------------------------ fuzz ----------------------------------- *)

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"RNG seed; failures replay exactly under the same seed.")

(* Unknown enum-ish flag values get their own exit code and a one-line
   hint, not cmdliner's generic usage dump (124) and not a raw
   exception: scripts can tell a mistyped --backend/--strategy apart
   from a real failure.  Validation therefore happens in the command
   bodies (below), not in a cmdliner conv. *)
let bad_flag_exit = 64

let bad_flag_value ~flag ~given ~valid =
  Printf.eprintf "cqctl: unknown %s %s (valid: %s)\n%!" flag given valid;
  Stdlib.exit bad_flag_exit

(* "itree" | "skiplist" | "treap" for a single backend, or "all". *)
let backend_arg =
  Arg.(
    value
    & opt string "itree"
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:"Engine stabbing backend: $(b,itree), $(b,skiplist), $(b,treap), or $(b,all).")

let backends_of s =
  if String.equal s "all" then Cq_index.Stab_backend.all
  else
    match Cq_index.Stab_backend.of_string s with
    | Ok k -> [ k ]
    | Error _ ->
        bad_flag_value ~flag:"--backend" ~given:s ~valid:"itree, skiplist, treap, all"

let strategy_arg =
  Arg.(
    value
    & opt string "hotspot"
    & info [ "strategy" ] ~docv:"STRATEGY"
        ~doc:"Event-processing strategy: $(b,hotspot) or $(b,ssi).")

let strategy_of s =
  match Hotspot_core.Processor.strategy_of_string s with
  | Ok k -> k
  | Error _ -> bad_flag_value ~flag:"--strategy" ~given:s ~valid:"hotspot, ssi"

let fuzz_cmd =
  let ops =
    Arg.(value & opt int 20_000 & info [ "ops" ] ~docv:"M" ~doc:"Operations per structure.")
  in
  let shards =
    Arg.(
      value & opt shard_count 2
      & info [ "shards" ] ~docv:"N"
          ~doc:"Shard count for the parallel-vs-sequential differential run.")
  in
  let faults =
    let f = Arg.enum [ ("default", `Default); ("burst", `Burst); ("drift", `Drift) ] in
    Arg.(
      value & opt f `Default
      & info [ "faults" ] ~docv:"KIND"
          ~doc:
            "Fault stream: $(b,default) runs the full structure battery, $(b,burst) replays \
             seeded overload bursts through the Shed policy and checks degraded answers \
             against the exact mirror, $(b,drift) replays walking-hotspot streams that force \
             strip migrations and checks delivery stays bit-for-bit shard-count-independent.")
  in
  let run seed ops backend shards faults metrics =
    with_metrics metrics @@ fun () ->
    let outcomes =
      match faults with
      | `Burst ->
          (* The shed battery: forced-rate differential checks at two
             rates and two shard counts (the outcomes must agree), the
             mixed-rate schedule that interleaves exact and shedding
             phases, then the adaptive burst-liveness replay. *)
          let fuzz_ops = max 100 (ops / 100) in
          List.concat_map
            (fun rate ->
              [
                Cq_robust.Oracle.run_shed ~shards:1 ~rate ~seed ~ops:fuzz_ops ();
                Cq_robust.Oracle.run_shed ~shards ~rate ~seed ~ops:fuzz_ops ();
              ])
            [ 0.25; 0.75 ]
          @ [
              Cq_robust.Oracle.run_shed_adaptive ~seed ~ops:fuzz_ops ();
              Cq_robust.Oracle.run_burst ~shards ~seed ~ops:(max 240 (ops / 50)) ();
            ]
      | `Drift ->
          (* Walking-hotspot replays at the requested shard count and a
             second one, so a placement-dependent bug can't hide behind
             a single layout. *)
          let drift_ops = max 240 (ops / 50) in
          let alt = if shards = 2 then 4 else 2 in
          [
            Cq_robust.Oracle.run_drift ~shards ~seed ~ops:drift_ops ();
            Cq_robust.Oracle.run_drift ~shards:alt ~seed ~ops:drift_ops ();
          ]
      | `Default -> (
          match backends_of backend with
          | [ b ] -> Cq_robust.Oracle.fuzz_all ~backend:b ~shards ~seed ~ops ()
          | b0 :: rest ->
              (* One full battery, then the backend-sensitive runs (engine
                 plus the flat-batch differential, whose stab_batch descent
                 differs per backend) under each further backend — the
                 structure runs are backend-independent. *)
              Cq_robust.Oracle.fuzz_all ~backend:b0 ~shards ~seed ~ops ()
              @ List.concat_map
                  (fun b ->
                    let fuzz_ops = max 200 (ops / 10) in
                    [
                      Cq_robust.Oracle.run_engine ~backend:b ~seed ~ops:fuzz_ops ();
                      Cq_robust.Oracle.run_batch ~backend:b ~seed ~ops:fuzz_ops ();
                    ])
                  rest
          | [] -> [])
    in
    List.iter (fun o -> Format.printf "@[<v>%a@]@." Cq_robust.Oracle.pp_outcome o) outcomes;
    let bad = List.filter (fun o -> not (Cq_robust.Oracle.passed o)) outcomes in
    if List.is_empty bad then (
      Format.printf "all %d structures agree with the oracle@." (List.length outcomes);
      `Ok ())
    else
      let faults_flag =
        match faults with
        | `Burst -> " --faults burst"
        | `Drift -> " --faults drift"
        | `Default -> ""
      in
      `Error
        ( false,
          Printf.sprintf
            "%d structure(s) diverged or violated invariants; replay exactly with: cqctl \
             fuzz%s --seed %d --ops %d --shards %d"
            (List.length bad) faults_flag seed ops shards )
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: run a seeded adversarial operation stream against every \
          structure and a naive oracle; exit nonzero on any divergence or invariant violation.")
    Term.(ret (const run $ seed_arg $ ops $ backend_arg $ shards $ faults $ metrics_term))

(* ------------------------------ audit ---------------------------------- *)

let audit_cmd =
  let n =
    Arg.(value & opt int 10_000 & info [ "n" ] ~docv:"N" ~doc:"Workload operations to build each structure from.")
  in
  let run seed n backend metrics =
    with_metrics metrics @@ fun () ->
    let reports =
      List.concat_map
        (fun b -> Cq_robust.Oracle.audit_workload ~backend:b ~seed ~n ())
        (backends_of backend)
    in
    let bad = ref 0 in
    List.iter
      (fun (name, report) ->
        (match report with Ok () -> () | Error _ -> incr bad);
        Format.printf "@[<v>%-22s %a@]@." name Cq_robust.Invariant.pp_report report)
      reports;
    if !bad = 0 then `Ok ()
    else `Error (false, Printf.sprintf "%d structure(s) failed their audit (seed %d)" !bad seed)
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Build every structure from a seeded workload and run its deep invariant audit; \
          exit nonzero on any violation.")
    Term.(ret (const run $ seed_arg $ n $ backend_arg $ metrics_term))

(* ------------------------- stats and trace ------------------------------ *)

let demo_queries =
  Arg.(value & opt int 400 & info [ "queries" ] ~docv:"N" ~doc:"Band queries to subscribe.")

let demo_events =
  Arg.(value & opt int 2_000 & info [ "events" ] ~docv:"N" ~doc:"Tuples to stream through.")

let demo_alpha =
  Arg.(value & opt float 0.02 & info [ "alpha" ] ~doc:"Hotspot threshold.")

let first_backend b = match backends_of b with k :: _ -> k | [] -> Cq_index.Stab_backend.Itree

let overload_arg =
  let module C = Cq_engine.Engine.Config in
  Arg.(
    value
    & opt (enum [ ("block", C.Block); ("reject", C.Reject); ("shed", C.Shed) ]) C.Block
    & info [ "overload" ] ~docv:"POLICY"
        ~doc:
          "Overload policy for the demo: $(b,block) runs the exact sequential demo; \
           $(b,reject) and $(b,shed) run a bursty parallel demo under that policy and \
           report admission/shedding counters and degraded-answer bounds.")

(* $(b,stats --shards N): replay a walking-hotspot drift stream through
   an N-shard parallel engine with the rebalancer armed and print the
   per-shard load gauges and the rebalancer ledger — the live view the
   parallel.shard.* / parallel.rebalance.* metrics export. *)
let run_shard_demo ~seed ~shards ~events =
  let module Par = Cq_engine.Parallel in
  let stream = Cq_robust.Fault.gen_drift ~shards ~seed ~n:(max 240 events) () in
  let t =
    Par.create ~alpha:0.1 ~seed ~shards ~batch_size:8
      ~rebalance:(Some { Cq_engine.Engine.Config.threshold = 1.5; check_every = 2 })
      ()
  in
  let handles = Queue.create () in
  Array.iter
    (fun op ->
      match op with
      | Cq_robust.Fault.Drift_register { range } ->
          Queue.add (Par.register t (Par.Band { range }) (fun _ _ -> ())) handles
      | Cq_robust.Fault.Drift_register_select { range_a; range_c } ->
          Queue.add (Par.register t (Par.Select { range_a; range_c }) (fun _ _ -> ())) handles
      | Cq_robust.Fault.Drift_deregister -> (
          match Queue.take_opt handles with
          | Some sub -> ignore (Par.deregister t sub)
          | None -> ())
      | Cq_robust.Fault.Drift_r rows -> Par.ingest_batch t Par.R rows
      | Cq_robust.Fault.Drift_s rows -> Par.ingest_batch t Par.S rows
      | Cq_robust.Fault.Drift_flush -> ignore (Par.flush t))
    stream;
  ignore (Par.flush t);
  Par.check_invariants t;
  let loads = Par.shard_loads t in
  let rb = Par.rebalance_stats t in
  Format.printf "@[<v>-- shard loads (drift demo, %d events) ----------------------@]@."
    (Array.length stream);
  Format.printf "  %-6s %8s %8s %10s %7s %10s@." "shard" "queries" "groups" "max group"
    "queue" "delivered";
  Array.iter
    (fun (l : Par.shard_load) ->
      Format.printf "  %-6d %8d %8d %10d %7d %10d@." l.Par.sl_shard l.Par.sl_queries
        l.Par.sl_groups l.Par.sl_max_group l.Par.sl_queue_depth l.Par.sl_delivered)
    loads;
  Format.printf
    "  rebalancer: %d checks, %d migrations, %d queries moved, last ratio %.2f@."
    rb.Par.rb_checks rb.Par.rb_migrations rb.Par.rb_migrated_queries rb.Par.rb_last_ratio;
  Par.shutdown t

let stats_cmd =
  let shards =
    Arg.(
      value
      & opt (some shard_count) None
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Run the demo through an $(docv)-shard parallel engine under a walking-hotspot \
             drift stream (rebalancer armed) and print per-shard load gauges and the \
             rebalancer ledger instead of the sequential stats block.")
  in
  let run seed queries events alpha backend strategy overload shards =
    let backend = first_backend backend and strategy = strategy_of strategy in
    Cq_obs.Metrics.set_enabled true;
    Cq_obs.Trace.set_enabled true;
    (match (shards, overload) with
    | Some shards, _ -> run_shard_demo ~seed ~shards ~events
    | None, Cq_engine.Engine.Config.Block ->
        let eng = run_demo ~queries ~events ~alpha ~seed ~backend ~strategy in
        Format.printf "@[<v>%a@]@." Cq_engine.Engine.pp_stats (Cq_engine.Engine.stats eng)
    | None, ((Cq_engine.Engine.Config.Reject | Cq_engine.Engine.Config.Shed) as overload) ->
        run_overload_demo ~seed ~overload ~events);
    Format.printf "@.-- metrics ---------------------------------------------------@.%a"
      Cq_obs.Metrics.pp ();
    Format.printf "@.-- trace tail ------------------------------------------------@.%a"
      (Cq_obs.Trace.pp_tail ~limit:20) ()
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run an instrumented demo workload and print the engine stats block, the metrics \
          registry, and the trace tail.  With $(b,--overload reject|shed), a bursty \
          parallel demo exercises the admission-control / load-shedding path instead.  \
          With $(b,--shards N), a walking-hotspot drift demo prints per-shard load gauges \
          and the strip rebalancer's ledger.")
    Term.(
      const run $ seed_arg $ demo_queries $ demo_events $ demo_alpha $ backend_arg
      $ strategy_arg $ overload_arg $ shards)

let trace_cmd =
  let out =
    Arg.(
      value
      & opt string "trace.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the Chrome trace_event JSON.")
  in
  let run seed queries events alpha backend strategy out =
    let backend = first_backend backend and strategy = strategy_of strategy in
    Cq_obs.Metrics.set_enabled true;
    Cq_obs.Trace.set_enabled true;
    ignore (run_demo ~queries ~events ~alpha ~seed ~backend ~strategy);
    Cq_obs.Trace.write_chrome ~path:out;
    Printf.printf "wrote %d trace events to %s (%d dropped by the ring)\n"
      (Cq_obs.Trace.length ()) out
      (Cq_obs.Trace.dropped ())
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run the instrumented demo workload and export the trace ring as Chrome \
          trace_event JSON (load in chrome://tracing or Perfetto).")
    Term.(
      const run $ seed_arg $ demo_queries $ demo_events $ demo_alpha $ backend_arg
      $ strategy_arg $ out)

(* --------------------------- serve / client ----------------------------- *)

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind or connect to.")

let resolve_addr host port =
  match Unix.inet_addr_of_string host with
  | addr -> Ok (Unix.ADDR_INET (addr, port))
  | exception Failure _ ->
      Error (Printf.sprintf "not an IP address: %s (try 127.0.0.1)" host)

let serve_cmd =
  let port =
    Arg.(
      value & opt int 7171
      & info [ "port" ] ~docv:"PORT"
          ~doc:"TCP port to listen on; 0 picks an ephemeral port (printed at startup).")
  in
  let max_sessions =
    Arg.(
      value & opt int 1000
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:
            "Accept cap; connections beyond it are refused with a typed error frame.  At \
             most 1000 (the select(2) FD_SETSIZE budget).")
  in
  let session_queue =
    Arg.(
      value & opt int 64
      & info [ "session-queue" ] ~docv:"FRAMES"
          ~doc:
            "Bounded result-queue capacity per session.  Small values make slow readers \
             shed (with OVERLOAD notices) sooner.")
  in
  let shards =
    Arg.(
      value & opt shard_count 1
      & info [ "shards" ] ~docv:"N" ~doc:"Worker shards for the parallel engine.")
  in
  let alpha =
    Arg.(value & opt float 0.01 & info [ "alpha" ] ~doc:"Hotspot threshold.")
  in
  let run seed host port max_sessions session_queue shards alpha backend strategy metrics =
    let backend = first_backend backend and strategy = strategy_of strategy in
    with_metrics metrics @@ fun () ->
    match resolve_addr host port with
    | Error msg -> `Error (false, msg)
    | Ok addr -> (
        let engine =
          {
            Cq_engine.Engine.Config.default with
            Cq_engine.Engine.Config.alpha;
            seed;
            backend;
            strategy;
            shards;
          }
        in
        let config =
          { Cq_net.Server.default_config with engine; max_sessions; session_queue }
        in
        match Cq_net.Server.try_create ~config ~addr () with
        | Error e -> `Error (false, Cq_util.Error.to_string e)
        | Ok srv ->
            let stop _ = Cq_net.Server.stop srv in
            Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
            Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
            Printf.printf "cqctl serve: listening on %s:%d (backend %s, strategy %s, %d shard%s)\n%!"
              host (Cq_net.Server.port srv)
              (Cq_index.Stab_backend.to_string backend)
              (Hotspot_core.Processor.strategy_to_string strategy)
              shards
              (if shards = 1 then "" else "s");
            Cq_net.Server.serve srv;
            Format.printf "@[<v>%a@]@." Cq_net.Server.pp_stats (Cq_net.Server.stats srv);
            `Ok ())
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve the continuous-query engine over TCP (DESIGN.md \xc2\xa714): sessions register \
          band/select queries, stream tuple batches, and receive fan-out result frames \
          with end-to-end backpressure.  Stop with SIGINT/SIGTERM.")
    Term.(
      ret
        (const run $ seed_arg $ host_arg $ port $ max_sessions $ session_queue $ shards
        $ alpha $ backend_arg $ strategy_arg $ metrics_term))

let client_cmd =
  let port =
    Arg.(
      required
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT" ~doc:"Server port to connect to.")
  in
  let bands =
    Arg.(
      value
      & opt_all (pair ~sep:':' float float) [ (400.0, 600.0) ]
      & info [ "band" ] ~docv:"LO:HI"
          ~doc:"Band-query window to register (repeatable; default one 400:600 window).")
  in
  let batches =
    Arg.(value & opt int 32 & info [ "batches" ] ~docv:"N" ~doc:"Tuple batches to stream.")
  in
  let rows =
    Arg.(value & opt int 64 & info [ "rows" ] ~docv:"N" ~doc:"Rows per batch.")
  in
  let run seed host port bands batches rows =
    let module Client = Cq_net.Client in
    let module Frame = Cq_net.Frame in
    let fail e = `Error (false, Client.error_to_string e) in
    match resolve_addr host port with
    | Error msg -> `Error (false, msg)
    | Ok addr -> (
        match Client.connect ~addr () with
        | Error e -> fail e
        | Ok c -> (
            Printf.printf "session %d\n%!" (Client.session_id c);
            let rec register = function
              | [] -> Ok ()
              | (lo, hi) :: rest -> (
                  match Client.register_band c ~lo ~hi with
                  | Error _ as e -> e
                  | Ok qid ->
                      Printf.printf "registered [%g, %g] as q%d\n%!" lo hi qid;
                      register rest)
            in
            match register bands with
            | Error e ->
                Client.close c;
                fail e
            | Ok () ->
                (* Seeded stream in the demo domain [0, 1000): R rows
                   carry (a, b), S rows (b, c); flushing every batch
                   keeps results arriving incrementally. *)
                let rng = Cq_util.Rng.create seed in
                let accepted = ref 0 and result_rows = ref 0 and dropped = ref 0 in
                let outcome = ref (`Ok ()) in
                (try
                   for _ = 1 to batches do
                     let side = if Cq_util.Rng.bool rng then Frame.R else Frame.S in
                     let rows =
                       Array.init rows (fun _ ->
                           ( 1000.0 *. Cq_util.Rng.float rng,
                             1000.0 *. Cq_util.Rng.float rng ))
                     in
                     (match
                        Client.send_batch c ~side (Cq_net.Driver.batch_of_rows rows)
                      with
                     | Ok (Client.Accepted n) -> accepted := !accepted + n
                     | Ok (Client.Overloaded { source; dropped = d; retry_after_ms }) ->
                         Printf.printf "OVERLOAD (%s): %d dropped, retry in %.1fms\n%!"
                           (Frame.overload_source_to_string source)
                           d retry_after_ms
                     | Error e ->
                         outcome := fail e;
                         raise Exit);
                     match Client.flush c with
                     | Error e ->
                         outcome := fail e;
                         raise Exit
                     | Ok _ ->
                         List.iter
                           (fun (_, rs) -> result_rows := !result_rows + Array.length rs)
                           (Client.take_results c);
                         List.iter
                           (fun (source, d, _) ->
                             dropped := !dropped + d;
                             Printf.printf "OVERLOAD (%s): %d result rows dropped\n%!"
                               (Frame.overload_source_to_string source)
                               d)
                           (Client.take_overloads c)
                   done
                 with Exit -> ());
                (match !outcome with `Ok () -> ignore (Client.bye c) | _ -> Client.close c);
                Printf.printf
                  "streamed %d rows in %d batches; %d result rows received, %d dropped at \
                   the server\n%!"
                  !accepted batches !result_rows !dropped;
                !outcome))
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Connect to $(b,cqctl serve), register band queries, stream a seeded tuple \
          workload, and report the result rows received.")
    Term.(ret (const run $ seed_arg $ host_arg $ port $ bands $ batches $ rows))

let lint_cmd =
  (* Shares Cq_lint.Engine with the standalone cqlint binary — same
     rules, same waivers, same exit discipline.  --format is a plain
     string validated in the body so a typo exits 64 with a hint, like
     every other enum-ish cqctl flag. *)
  let format_arg =
    Arg.(
      value
      & opt string "text"
      & info [ "format" ] ~docv:"FMT" ~doc:"Output format: $(b,text) or $(b,json).")
  in
  let sarif_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "sarif" ] ~docv:"FILE"
          ~doc:"Also write a SARIF 2.1.0 report to $(docv) (for GitHub code scanning).")
  in
  let waivers_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "waivers" ] ~docv:"FILE" ~doc:"Waiver allowlist (default: ROOT/.cqlint if present).")
  in
  let root_arg =
    Arg.(value & pos 0 dir "." & info [] ~docv:"ROOT" ~doc:"Workspace root containing lib/ and bin/.")
  in
  let run format sarif_file waiver_file root =
    (match format with
    | "text" | "json" -> ()
    | other -> bad_flag_value ~flag:"--format" ~given:other ~valid:"text, json");
    let report = Cq_lint.Engine.run ?waiver_file ~root () in
    (match sarif_file with
    | Some f ->
        Out_channel.with_open_bin f (fun oc ->
            Out_channel.output_string oc (Cq_lint.Render.sarif_of_report report))
    | None -> ());
    (match format with
    | "json" -> print_endline (Cq_lint.Render.json_of_report report)
    | _ -> print_string (Cq_lint.Render.text_of_report report));
    if Cq_lint.Engine.clean report then `Ok () else `Error (false, "lint findings (see above)")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the cqlint static-analysis gate (CQL001-CQL010: style, error and state \
          discipline plus domain-safety, event-loop and hot-path allocation rules) \
          over lib/ and bin/.")
    Term.(ret (const run $ format_arg $ sarif_arg $ waivers_arg $ root_arg))

let main =
  let doc = "scalable continuous query processing by tracking hotspots (VLDB 2006 reproduction)" in
  Cmd.group
    (Cmd.info "cqctl" ~version:"1.0.0" ~doc)
    [
      bench_cmd; list_cmd; zipf_cmd; workload_cmd; fuzz_cmd; audit_cmd; stats_cmd;
      trace_cmd; serve_cmd; client_cmd; lint_cmd;
    ]

let () = exit (Cmd.eval main)
