(* cqlint — the repo's AST-driven convention gate (DESIGN.md §10).

   Parses every .ml/.mli under ROOT/lib and ROOT/bin with ppxlib's
   pinned AST and enforces CQL001–CQL005, honouring per-site waivers
   from ROOT/.cqlint.  Exit 0 only when the tree is clean: no unwaived
   finding, no stale waiver, no parse error. *)

open Cmdliner

let list_rules () =
  List.iter
    (fun r ->
      Printf.printf "%s %-24s %s\n" (Cq_lint.Rule.id r) (Cq_lint.Rule.name r)
        (Cq_lint.Rule.summary r))
    Cq_lint.Rule.all;
  0

let run format waiver_file root list_only =
  if list_only then list_rules ()
  else begin
    let report = Cq_lint.Engine.run ?waiver_file ~root () in
    (match format with
    | `Json -> print_endline (Cq_lint.Render.json_of_report report)
    | `Text -> print_string (Cq_lint.Render.text_of_report report));
    if Cq_lint.Engine.clean report then 0 else 1
  end

let format_arg =
  let fmt = Arg.enum [ ("text", `Text); ("json", `Json) ] in
  Arg.(value & opt fmt `Text & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text or json.")

let waivers_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "waivers" ] ~docv:"FILE" ~doc:"Waiver allowlist (default: ROOT/.cqlint if present).")

let root_arg =
  Arg.(value & pos 0 dir "." & info [] ~docv:"ROOT" ~doc:"Workspace root containing lib/ and bin/.")

let list_rules_arg =
  Arg.(value & flag & info [ "list-rules" ] ~doc:"Print the rule set and exit.")

let cmd =
  Cmd.v
    (Cmd.info "cqlint" ~version:"1.0.0"
       ~doc:"Static analysis gate: hot-path, error-discipline and domain-safety invariants.")
    Term.(const run $ format_arg $ waivers_arg $ root_arg $ list_rules_arg)

let () = exit (Cmd.eval' cmd)
