(* cqlint — the repo's AST-driven convention gate (DESIGN.md §10).

   Parses every .ml/.mli under ROOT/lib and ROOT/bin with ppxlib's
   pinned AST and enforces CQL001–CQL010, honouring per-site waivers
   from ROOT/.cqlint.  Exit 0 only when the tree is clean: no unwaived
   finding, no stale waiver, no parse error. *)

open Cmdliner

(* Same discipline as cqctl: unknown enum-ish flag values get exit 64
   and a one-line hint, not cmdliner's usage dump — scripts can tell a
   mistyped --format apart from real findings (exit 1). *)
let bad_flag_exit = 64

let bad_flag_value ~flag ~given ~valid =
  Printf.eprintf "cqlint: unknown %s %s (valid: %s)\n%!" flag given valid;
  Stdlib.exit bad_flag_exit

let list_rules () =
  List.iter
    (fun r ->
      Printf.printf "%s %-24s %s\n" (Cq_lint.Rule.id r) (Cq_lint.Rule.name r)
        (Cq_lint.Rule.summary r))
    Cq_lint.Rule.all;
  0

let write_file path contents = Out_channel.with_open_bin path (fun oc ->
    Out_channel.output_string oc contents)

let run format sarif_file hot_manifest waiver_file root list_only =
  if list_only then list_rules ()
  else begin
    (match format with
    | "text" | "json" -> ()
    | other -> bad_flag_value ~flag:"--format" ~given:other ~valid:"text, json");
    match hot_manifest with
    | Some out ->
        let lines = Cq_lint.Engine.hot_manifest ~root in
        let contents =
          match lines with [] -> "" | _ -> String.concat "\n" lines ^ "\n"
        in
        if String.equal out "-" then print_string contents else write_file out contents;
        0
    | None ->
        let report = Cq_lint.Engine.run ?waiver_file ~root () in
        (match sarif_file with
        | Some f -> write_file f (Cq_lint.Render.sarif_of_report report)
        | None -> ());
        (match format with
        | "json" -> print_endline (Cq_lint.Render.json_of_report report)
        | _ -> print_string (Cq_lint.Render.text_of_report report));
        if Cq_lint.Engine.clean report then 0 else 1
  end

let format_arg =
  Arg.(
    value
    & opt string "text"
    & info [ "format" ] ~docv:"FMT" ~doc:"Output format: $(b,text) or $(b,json).")

let sarif_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "sarif" ] ~docv:"FILE"
        ~doc:"Also write a SARIF 2.1.0 report to $(docv) (for GitHub code scanning).")

let hot_manifest_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "hot-manifest" ] ~docv:"FILE"
        ~doc:
          "Instead of linting, write the [\\@cq.hot] annotation manifest (one \
           path:name line per hot binding) to $(docv); $(b,-) for stdout.")

let waivers_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "waivers" ] ~docv:"FILE" ~doc:"Waiver allowlist (default: ROOT/.cqlint if present).")

let root_arg =
  Arg.(value & pos 0 dir "." & info [] ~docv:"ROOT" ~doc:"Workspace root containing lib/ and bin/.")

let list_rules_arg =
  Arg.(value & flag & info [ "list-rules" ] ~doc:"Print the rule set and exit.")

let cmd =
  Cmd.v
    (Cmd.info "cqlint" ~version:"1.0.0"
       ~doc:"Static analysis gate: hot-path, error-discipline and domain-safety invariants.")
    Term.(
      const run $ format_arg $ sarif_arg $ hot_manifest_arg $ waivers_arg $ root_arg
      $ list_rules_arg)

let () = exit (Cmd.eval' cmd)
